// Package chain executes real neural networks (built from internal/nn
// layers) under a checkpointing schedule from internal/checkpoint. It is the
// bridge between the paper's scheduling theory and an actual training step:
// the executor re-runs stage forwards exactly where the schedule says to,
// retains only the states the schedule snapshots, and produces gradients that
// are identical to plain backpropagation.
//
// The recompute sweeps run on the parallel kernel engine in internal/tensor:
// every stage forward re-executed by an Advance action uses the blocked,
// batch-parallel, pool-backed kernels, so recomputation proceeds at the same
// throughput as the initial sweep with no per-recompute scratch allocation.
//
// Checkpoints live in a pluggable store (package store): the default RAM
// store keeps stage outputs by reference — safe because the nn.Layer
// contract guarantees Forward returns a fresh tensor, never a reused
// internal buffer — while a disk or tiered store serializes states through
// the bit-exact raw tensor codec, so the flash tier of a two-level schedule
// really spills. Results are bit-identical at any worker count
// (EDGETRAIN_WORKERS) and across stores, so a checkpointed (and even
// spilled) step reproduces plain backpropagation exactly.
package chain

import (
	"errors"
	"fmt"
	"time"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
	"github.com/edgeml/edgetrain/store"
)

// Chain is a sequential network viewed as a list of checkpointable stages.
// Each stage is an nn.Layer; a stage's input is the previous stage's output.
type Chain struct {
	Stages []nn.Layer
}

// FromSequential views a Sequential container as a chain whose stages are the
// container's layers.
func FromSequential(s *nn.Sequential) *Chain {
	return &Chain{Stages: append([]nn.Layer(nil), s.Layers...)}
}

// New builds a chain directly from layers.
func New(stages ...nn.Layer) *Chain { return &Chain{Stages: stages} }

// Len returns the number of stages (the chain length L).
func (c *Chain) Len() int { return len(c.Stages) }

// Params returns all trainable parameters of the chain.
func (c *Chain) Params() []*nn.Param {
	var ps []*nn.Param
	for _, s := range c.Stages {
		ps = append(ps, s.Params()...)
	}
	return ps
}

// ZeroGrads clears all parameter gradients.
func (c *Chain) ZeroGrads() { nn.ZeroGrads(c.Stages) }

// LossGradFunc maps the chain output to the gradient of the training loss
// with respect to that output. It is called exactly once per Execute, when
// the adjoint of the final stage runs.
type LossGradFunc func(output *tensor.Tensor) *tensor.Tensor

// Result reports what a checkpointed execution did.
type Result struct {
	Output    *tensor.Tensor // the chain output x_L
	InputGrad *tensor.Tensor // gradient with respect to the chain input x_0

	// ForwardEvals counts stage forward executions triggered by Advance
	// actions (recomputation and the initial sweep). The forward run folded
	// into each adjoint step is counted separately in BackwardEvals.
	ForwardEvals  int
	BackwardEvals int

	// PeakStates is the maximum number of simultaneously retained states
	// (checkpoints plus the chain input).
	PeakStates int
	// PeakStateBytes is the measured peak RAM footprint of the execution's
	// states: the chain input, the RAM-resident checkpoints, and the live
	// working state when it is not one of those (the largest transient).
	// States a tiered store spilled to disk do not count here.
	PeakStateBytes int64

	// PeakDiskBytes is the high-water mark of checkpoint bytes this
	// execution held on disk (a per-step quantity even on a reused store);
	// zero for a pure in-RAM execution.
	PeakDiskBytes int64
	// DiskWrites and DiskReads count checkpoint spills and restores
	// performed by the store's disk tier.
	DiskWrites int
	DiskReads  int
}

// ErrNoLossGrad is returned when Execute is called without a loss-gradient
// callback.
var ErrNoLossGrad = errors.New("chain: nil loss-gradient callback")

// Execute runs one training step (forward + backward) of the chain on input x
// following the given checkpointing schedule, keeping every checkpoint as an
// in-RAM tensor reference. Parameter gradients are accumulated into the
// stages' Params; the caller applies the optimiser.
//
// The schedule is consumed as a stream, so lazily generated plans execute
// identically to materialized ones. Its length must equal the chain length.
// train selects the layers' training mode (batch statistics for batch norm).
func Execute(c *Chain, x *tensor.Tensor, lossGrad LossGradFunc, sched schedule.Schedule, train bool) (*Result, error) {
	return ExecuteWithStore(c, x, lossGrad, sched, store.NewRAM(), train)
}

// ExecuteWithStore runs one training step like Execute, but routes the
// schedule's Snapshot/Restore/Free actions through the given checkpoint
// store. With a tiered store, the disk-tier snapshots of a two-level plan
// are serialized to flash and the reported PeakStateBytes counts only what
// stayed resident in RAM; PeakDiskBytes and the I/O counters account for the
// spilled tier. The store is left empty on success (a valid schedule frees
// every slot) and is not closed, so one store can serve a whole training run
// while its Stats accumulate.
func ExecuteWithStore(c *Chain, x *tensor.Tensor, lossGrad LossGradFunc, sched schedule.Schedule, st store.Store, train bool) (*Result, error) {
	if lossGrad == nil {
		return nil, ErrNoLossGrad
	}
	if st == nil {
		return nil, errors.New("chain: nil checkpoint store")
	}
	if sched.Length() != c.Len() {
		return nil, fmt.Errorf("chain: schedule length %d does not match chain length %d", sched.Length(), c.Len())
	}
	l := c.Len()
	res := &Result{}

	// Observability: timestamps are taken only when a registry is
	// installed, so disabled runs skip every clock read. Timing never
	// feeds back into execution — weights stay byte-identical either way.
	om := obsHandles()
	var stepStart time.Time
	var fwdDur, bwdDur time.Duration
	if om.on {
		stepStart = time.Now()
	}

	// Working state and checkpoint slots. State index i means x_i (the output
	// of stage i); index 0 is the chain input. The tensors themselves live in
	// the store; the executor only tracks which state index occupies a slot.
	current := x
	currentIdx := 0
	slotIdx := make([]int, sched.Slots())
	for i := range slotIdx {
		slotIdx[i] = -1
	}
	occupied := 0
	startRAM := st.BytesResident() // pre-existing residency of a reused store
	startStats := st.Stats()       // accounting baseline, so a reused store reports per-step deltas

	// fail releases every slot this execution occupied before returning the
	// error, so a reused store is not left poisoned ("slot already
	// occupied") and spill files do not leak past the failed step.
	fail := func(err error) (*Result, error) {
		for slot, idx := range slotIdx {
			if idx != -1 {
				st.Free(slot) // best effort; the original error wins
			}
		}
		return nil, err
	}

	// trackPeak measures the RAM actually retained right now: the chain
	// input, the store's RAM-resident checkpoints, and the live working
	// state unless it aliases one of those (the RAM store keeps references,
	// so a just-snapshotted or just-restored state must not count twice).
	trackPeak := func() {
		if states := 1 + occupied; states > res.PeakStates {
			res.PeakStates = states
		}
		bytes := x.Bytes() + st.BytesResident() - startRAM
		if current != x && !st.Holds(current) {
			bytes += current.Bytes()
		}
		if bytes > res.PeakStateBytes {
			res.PeakStateBytes = bytes
		}
	}
	trackPeak()

	pending := l                // next adjoint step
	var upstream *tensor.Tensor // gradient flowing into the pending stage

	runForward := func(stage int, input *tensor.Tensor) *tensor.Tensor {
		return c.Stages[stage-1].Forward(input, train)
	}

	ai := 0
	for a := range sched.Actions() {
		switch a.Kind {
		case schedule.ActionAdvance:
			var t0 time.Time
			if om.on {
				t0 = time.Now()
			}
			for s := 0; s < a.Steps; s++ {
				current = runForward(currentIdx+1, current)
				currentIdx++
				res.ForwardEvals++
				trackPeak()
			}
			if om.on {
				fwdDur += time.Since(t0)
			}
		case schedule.ActionSnapshot:
			if a.Slot < 0 || a.Slot >= len(slotIdx) {
				return fail(fmt.Errorf("chain: action %d: slot %d out of range", ai, a.Slot))
			}
			if err := st.Put(a.Slot, a.Tier, current); err != nil {
				return fail(fmt.Errorf("chain: action %d: %w", ai, err))
			}
			slotIdx[a.Slot] = currentIdx
			occupied++
			// Disk residency only grows on Put, so sampling here captures
			// this step's flash peak even on a reused store.
			if d := st.Stats().DiskBytes - startStats.DiskBytes; d > res.PeakDiskBytes {
				res.PeakDiskBytes = d
			}
			trackPeak()
		case schedule.ActionRestore:
			if a.Slot == schedule.InputSlot {
				current, currentIdx = x, 0
			} else {
				if a.Slot < 0 || a.Slot >= len(slotIdx) || slotIdx[a.Slot] == -1 {
					return fail(fmt.Errorf("chain: action %d: restore from empty slot %d", ai, a.Slot))
				}
				t, err := st.Get(a.Slot)
				if err != nil {
					return fail(fmt.Errorf("chain: action %d: %w", ai, err))
				}
				current, currentIdx = t, slotIdx[a.Slot]
				trackPeak()
			}
		case schedule.ActionFree:
			if a.Slot < 0 || a.Slot >= len(slotIdx) || slotIdx[a.Slot] == -1 {
				return fail(fmt.Errorf("chain: action %d: freeing empty slot %d", ai, a.Slot))
			}
			if err := st.Free(a.Slot); err != nil {
				return fail(fmt.Errorf("chain: action %d: %w", ai, err))
			}
			slotIdx[a.Slot] = -1
			occupied--
		case schedule.ActionBackprop:
			if pending == 0 {
				return fail(fmt.Errorf("chain: action %d: no adjoint steps left", ai))
			}
			if currentIdx != pending-1 {
				return fail(fmt.Errorf("chain: action %d: adjoint of stage %d needs state %d, have %d", ai, pending, pending-1, currentIdx))
			}
			// The adjoint of a stage always re-runs its forward so the layer's
			// internal cache corresponds to the correct input, then applies
			// the layer backward.
			var t0 time.Time
			if om.on {
				t0 = time.Now()
			}
			out := runForward(pending, current)
			res.BackwardEvals++
			if pending == l {
				res.Output = out
				upstream = lossGrad(out)
				if upstream == nil {
					return fail(fmt.Errorf("chain: loss-gradient callback returned nil"))
				}
			}
			upstream = c.Stages[pending-1].Backward(upstream)
			pending--
			if om.on {
				bwdDur += time.Since(t0)
			}
		default:
			return fail(fmt.Errorf("chain: action %d: unknown kind %d", ai, a.Kind))
		}
		ai++
	}
	if pending != 0 {
		return fail(fmt.Errorf("chain: schedule left %d adjoint steps unexecuted", pending))
	}
	res.InputGrad = upstream
	stats := st.Stats()
	res.DiskWrites = stats.DiskWrites - startStats.DiskWrites
	res.DiskReads = stats.DiskReads - startStats.DiskReads
	om.record(res, stepStart, fwdDur, bwdDur)
	return res, nil
}

// ExecutePlain runs a conventional forward and backward pass (every stage's
// cache retained by the layer itself). It is the baseline the checkpointed
// executor is validated against and corresponds to the store-all row of the
// paper's analysis.
func ExecutePlain(c *Chain, x *tensor.Tensor, lossGrad LossGradFunc, train bool) (*Result, error) {
	if lossGrad == nil {
		return nil, ErrNoLossGrad
	}
	res := &Result{}
	om := obsHandles()
	var stepStart, t0 time.Time
	var fwdDur, bwdDur time.Duration
	if om.on {
		stepStart = time.Now()
		t0 = stepStart
	}
	states := []*tensor.Tensor{x}
	current := x
	for _, s := range c.Stages {
		current = s.Forward(current, train)
		states = append(states, current)
		res.ForwardEvals++
	}
	if om.on {
		fwdDur = time.Since(t0)
	}
	res.Output = current
	var bytes int64
	for _, s := range states {
		bytes += s.Bytes()
	}
	res.PeakStates = len(states)
	res.PeakStateBytes = bytes

	grad := lossGrad(current)
	if grad == nil {
		return nil, fmt.Errorf("chain: loss-gradient callback returned nil")
	}
	if om.on {
		t0 = time.Now()
	}
	for i := len(c.Stages) - 1; i >= 0; i-- {
		grad = c.Stages[i].Backward(grad)
		res.BackwardEvals++
	}
	if om.on {
		bwdDur = time.Since(t0)
	}
	res.InputGrad = grad
	om.record(res, stepStart, fwdDur, bwdDur)
	return res, nil
}

// Policy selects how Step plans its checkpointing schedule. Kind names a
// strategy in the public plan registry; the remaining fields are forwarded as
// the matching plan options.
type Policy struct {
	// Kind is a registered strategy name ("storeall", "revolve", "sequential",
	// "periodic", "logspaced", "twolevel"). The legacy spelling "store-all"
	// and the empty string select "storeall".
	Kind string
	// Slots is the checkpoint budget for "revolve" (and the RAM tier of
	// "twolevel").
	Slots int
	// Segments is the segment count for "sequential".
	Segments int
	// Interval is the checkpoint period for "periodic".
	Interval int
	// DiskSlots is the flash-tier checkpoint count for "twolevel".
	DiskSlots int
	// Rho, when positive, is a recompute budget from which strategies derive
	// their memory tunable (e.g. "revolve" with Slots == 0).
	Rho float64
	// Cost is the cost model used for the Rho-based selection.
	Cost checkpoint.CostModel
	// MemoryBudget, when positive, is the RAM byte budget handed to
	// budget-aware strategies ("auto" selects and parametrizes the cheapest
	// strategy whose peak resident footprint fits it).
	MemoryBudget int64
	// WeightBytes and ActivationBytes describe the chain's memory shape for
	// budget-aware planning: the resident weight state (values plus
	// gradients) and the size of one stored inter-stage state. Step defaults
	// them from the network parameters and the input tensor when zero.
	WeightBytes     int64
	ActivationBytes int64
	// Store, when non-nil, executes the schedule's Snapshot/Restore/Free
	// actions through the given checkpoint store (e.g. store.NewTiered to
	// spill into a chosen directory with stats accumulating across steps).
	// When nil, Step keeps checkpoints as in-RAM tensor references — except
	// for plans that annotate slots with the disk tier, which spill through
	// a temporary tiered store so a budget-selected two-level plan never
	// silently lands its flash tier in RAM.
	Store store.Store
}

// strategyName normalises the policy kind to a registry name. Only the
// legacy spelling "store-all" (and the empty default) is rewritten; every
// other kind is passed through verbatim so user-registered strategies with
// any name keep working.
func (p Policy) strategyName() string {
	switch p.Kind {
	case "", "store-all":
		return "storeall"
	default:
		return p.Kind
	}
}

// Plan materialises the policy into a schedule for a chain of length l by
// looking the strategy up in the public plan registry.
func (p Policy) Plan(l int) (schedule.Schedule, error) {
	var opts []plan.Option
	if p.Slots > 0 {
		opts = append(opts, plan.WithSlots(p.Slots))
	}
	if p.Segments > 0 {
		opts = append(opts, plan.WithSegments(p.Segments))
	}
	if p.Interval > 0 {
		opts = append(opts, plan.WithInterval(p.Interval))
	}
	if p.DiskSlots > 0 {
		opts = append(opts, plan.WithDiskSlots(p.DiskSlots))
	}
	if p.Rho > 0 {
		opts = append(opts, plan.WithRho(p.Rho))
	}
	if p.Cost.BackwardRatio > 0 {
		opts = append(opts, plan.WithBackwardRatio(p.Cost.BackwardRatio))
	}
	if p.MemoryBudget > 0 {
		opts = append(opts, plan.WithMemoryBudget(p.MemoryBudget))
	}
	spec := plan.ChainSpec{
		Length:          l,
		WeightBytes:     p.WeightBytes,
		ActivationBytes: p.ActivationBytes,
	}
	return plan.Build(p.strategyName(), spec, opts...)
}

// Step plans a schedule for the chain according to the policy and executes
// it. A store-all policy without a store uses ExecutePlain; a policy with a
// Store routes the checkpoints through it. For budget-aware strategies, the
// chain's memory shape defaults to the live configuration: one stored state
// is assumed to be the size of the input x (the homogeneous-chain
// approximation), and the weight state to value+gradient of every parameter.
func Step(c *Chain, x *tensor.Tensor, lossGrad LossGradFunc, p Policy, train bool) (*Result, error) {
	if p.strategyName() == "storeall" && p.Store == nil {
		return ExecutePlain(c, x, lossGrad, train)
	}
	if p.ActivationBytes == 0 {
		p.ActivationBytes = x.Bytes()
	}
	if p.WeightBytes == 0 {
		p.WeightBytes = 2 * nn.ParamBytes(c.Stages)
	}
	sched, err := p.Plan(c.Len())
	if err != nil {
		return nil, err
	}
	if p.Store != nil {
		return ExecuteWithStore(c, x, lossGrad, sched, p.Store, train)
	}
	// A plan that assigns slots to the flash tier was chosen to keep those
	// states out of RAM (the budget the auto strategy enforces assumes it),
	// so executing it with the all-in-RAM reference store would silently
	// violate the budget. Spill through a temporary tiered store instead;
	// callers who want control over the spill directory or want the store's
	// stats to accumulate across steps set Policy.Store.
	if schedule.UsesTier(sched, schedule.TierDisk) {
		ts, err := store.NewTiered("")
		if err != nil {
			return nil, err
		}
		defer ts.Close()
		return ExecuteWithStore(c, x, lossGrad, sched, ts, train)
	}
	return Execute(c, x, lossGrad, sched, train)
}
