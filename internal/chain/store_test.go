package chain

import (
	"reflect"
	"testing"

	"github.com/edgeml/edgetrain/internal/checkpoint"
	"github.com/edgeml/edgetrain/internal/nn"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/plan"
	"github.com/edgeml/edgetrain/schedule"
	"github.com/edgeml/edgetrain/store"
)

// buildUniformChain makes an MLP whose every inter-stage state has exactly
// the same byte size as the input, so peak-memory expectations are exact
// multiples of one state.
func buildUniformChain(seed uint64, l int) (*Chain, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	var layers []nn.Layer
	for i := 0; i < l; i++ {
		layers = append(layers, nn.NewLinear(string(rune('a'+i)), 8, 8, true, rng))
	}
	return New(layers...), tensor.RandNormal(rng, 0, 1, 4, 8)
}

// TestPeakStateBytesCountsWorkingState pins the fix for the peak-memory
// undercount: the live working state produced by an Advance is resident RAM
// even though it sits in no checkpoint slot, so the peak of a revolve
// execution is input + slots + working state — not input + slots.
func TestPeakStateBytesCountsWorkingState(t *testing.T) {
	const l, slots = 6, 2
	c, x := buildUniformChain(29, l)
	s := x.Bytes()
	sched := buildSched(t, "revolve", l, plan.WithSlots(slots))
	res, err := Execute(c, x, fixedLossGrad(5), sched, true)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(slots+2) * s // input + 2 checkpoints + the transient
	if res.PeakStateBytes != want {
		t.Fatalf("PeakStateBytes = %d (%.1f states), want %d (%d states): the working state must be counted",
			res.PeakStateBytes, float64(res.PeakStateBytes)/float64(s), want, slots+2)
	}
	// The old accounting (checkpoints + input only) is strictly smaller.
	if res.PeakStateBytes <= int64(slots+1)*s {
		t.Fatal("peak accounting regressed to checkpoints-only")
	}

	// ExecutePlain already counted every state; unchanged.
	cPlain, _ := buildUniformChain(29, l)
	plain, err := ExecutePlain(cPlain, x, fixedLossGrad(5), true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PeakStateBytes != int64(l+1)*s {
		t.Fatalf("plain PeakStateBytes = %d, want %d", plain.PeakStateBytes, int64(l+1)*s)
	}
}

// TestDiskStoreExecutionMatchesRAM runs the same revolve schedule through
// the in-RAM reference store and the serialize-everything disk store: the
// gradients must be bit-identical and the disk execution must retain only
// the input and the working state in RAM.
func TestDiskStoreExecutionMatchesRAM(t *testing.T) {
	const l = 9
	cRAM, x := buildUniformChain(31, l)
	cDisk, _ := buildUniformChain(31, l)
	loss := fixedLossGrad(17)
	sched := buildSched(t, "revolve", l, plan.WithSlots(3))

	ram, err := Execute(cRAM, x, loss, sched, true)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := store.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	disk, err := ExecuteWithStore(cDisk, x, loss, sched, ds, true)
	if err != nil {
		t.Fatal(err)
	}

	if tensor.MaxAbsDiff(ram.Output, disk.Output) != 0 {
		t.Fatal("disk-store output differs from RAM execution")
	}
	if tensor.MaxAbsDiff(ram.InputGrad, disk.InputGrad) != 0 {
		t.Fatal("disk-store input gradient differs from RAM execution")
	}
	gr, gd := gradSnapshot(cRAM), gradSnapshot(cDisk)
	for i := range gr {
		if tensor.MaxAbsDiff(gr[i], gd[i]) != 0 {
			t.Fatalf("disk-store parameter gradient %d differs", i)
		}
	}
	if want := 2 * x.Bytes(); disk.PeakStateBytes != want {
		t.Fatalf("disk execution PeakStateBytes = %d, want %d (input + working state only)", disk.PeakStateBytes, want)
	}
	if disk.DiskWrites == 0 || disk.DiskReads == 0 || disk.PeakDiskBytes == 0 {
		t.Fatalf("disk execution reported no spill traffic: %+v", disk)
	}
	if ram.PeakStateBytes <= disk.PeakStateBytes {
		t.Fatal("spilling every checkpoint must shrink resident RAM")
	}
}

// TestTwoLevelSpillStaysUnderBudget is the end-to-end acceptance test: a
// twolevel schedule executed with a tiered store produces gradients equal to
// plain backpropagation, keeps its resident RAM under a budget that
// store-all provably exceeds, and really moves the flash tier to disk.
func TestTwoLevelSpillStaysUnderBudget(t *testing.T) {
	const l, ramSlots, diskSlots = 16, 2, 3
	cPlain, x := buildUniformChain(37, l)
	cSpill, _ := buildUniformChain(37, l)
	loss := fixedLossGrad(11)
	s := x.Bytes()
	weights := 2 * nn.ParamBytes(cSpill.Stages)
	budget := weights + int64(ramSlots+2)*s // input + working + RAM tier

	plain, err := ExecutePlain(cPlain, x, loss, true)
	if err != nil {
		t.Fatal(err)
	}
	if weights+plain.PeakStateBytes <= budget {
		t.Fatalf("test setup broken: store-all (%d) fits the budget (%d)", weights+plain.PeakStateBytes, budget)
	}

	ts, err := store.NewTiered(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	sched := buildSched(t, "twolevel", l, plan.WithSlots(ramSlots), plan.WithDiskSlots(diskSlots))
	res, err := ExecuteWithStore(cSpill, x, loss, sched, ts, true)
	if err != nil {
		t.Fatal(err)
	}

	// Gradient equivalence, bit-exact through the serialization round trip.
	if tensor.MaxAbsDiff(plain.Output, res.Output) != 0 {
		t.Fatal("spilled output differs from plain execution")
	}
	if tensor.MaxAbsDiff(plain.InputGrad, res.InputGrad) != 0 {
		t.Fatal("spilled input gradient differs from plain execution")
	}
	gp, gs := gradSnapshot(cPlain), gradSnapshot(cSpill)
	for i := range gp {
		if tensor.MaxAbsDiff(gp[i], gs[i]) != 0 {
			t.Fatalf("spilled parameter gradient %d differs", i)
		}
	}

	// Budget: resident RAM stays inside it while store-all does not.
	if weights+res.PeakStateBytes > budget {
		t.Fatalf("spilled execution resident peak %d exceeds budget %d", weights+res.PeakStateBytes, budget)
	}
	// Spill traffic really happened, sized like the flash boundaries.
	if res.DiskWrites != diskSlots {
		t.Fatalf("DiskWrites = %d, want %d boundary spills", res.DiskWrites, diskSlots)
	}
	if res.DiskReads < diskSlots {
		t.Fatalf("DiskReads = %d, want at least one read per boundary (%d)", res.DiskReads, diskSlots)
	}
	if res.PeakDiskBytes < int64(diskSlots)*s {
		t.Fatalf("PeakDiskBytes = %d, want at least %d", res.PeakDiskBytes, int64(diskSlots)*s)
	}

	// The same chain through the budget-aware policy front door.
	ts2, err := store.NewTiered(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close()
	cAuto, _ := buildUniformChain(37, l)
	auto, err := Step(cAuto, x, loss, Policy{Kind: "auto", MemoryBudget: budget, Store: ts2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(plain.InputGrad, auto.InputGrad) != 0 {
		t.Fatal("auto-planned spilled execution gradient differs from plain")
	}
	if weights+auto.PeakStateBytes > budget {
		t.Fatalf("auto-planned resident peak %d exceeds budget %d", weights+auto.PeakStateBytes, budget)
	}
}

// TestStepSpillsDiskTiersByDefault pins that a policy whose plan assigns
// disk tiers really spills even when the caller sets no Store: the budget a
// tight "auto" selection was made against must hold.
func TestStepSpillsDiskTiersByDefault(t *testing.T) {
	const l = 24 // long enough that a 4-state budget selects twolevel
	c, x := buildUniformChain(41, l)
	s := x.Bytes()
	weights := 2 * nn.ParamBytes(c.Stages)
	budget := weights + 4*s

	res, err := Step(c, x, fixedLossGrad(13), Policy{Kind: "auto", MemoryBudget: budget}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskWrites == 0 {
		t.Fatal("tight auto plan executed without spilling despite nil Policy.Store")
	}
	if weights+res.PeakStateBytes > budget {
		t.Fatalf("default-store execution resident peak %d exceeds budget %d", weights+res.PeakStateBytes, budget)
	}

	// Same for an explicit twolevel policy.
	c2, _ := buildUniformChain(41, l)
	res, err = Step(c2, x, fixedLossGrad(13), Policy{Kind: "twolevel", Slots: 2, DiskSlots: 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskWrites != 3 {
		t.Fatalf("twolevel policy spilled %d boundaries, want 3", res.DiskWrites)
	}
}

// optionProbe captures the Options and ChainSpec a Policy.Plan call hands
// the registry, so the full field mapping is pinned.
type optionProbe struct {
	got     *plan.Options
	gotSpec *plan.ChainSpec
}

func (p optionProbe) Plan(spec plan.ChainSpec, opts ...plan.Option) (schedule.Schedule, error) {
	*p.got = plan.Gather(opts)
	*p.gotSpec = spec
	return plan.StoreAllStream(spec.Length), nil
}

func (p optionProbe) Describe() plan.StrategyInfo {
	return plan.StrategyInfo{Name: "option-probe", Description: "test probe"}
}

// TestPolicyOptionMapping is the table-driven Policy→plan.Option mapping
// test: every Policy field must land in the matching option, zero-valued
// fields (including Cost.BackwardRatio) must stay unset so strategies apply
// their defaults, and the memory shape must flow into the ChainSpec.
func TestPolicyOptionMapping(t *testing.T) {
	var got plan.Options
	var gotSpec plan.ChainSpec
	plan.Register("option-probe", optionProbe{got: &got, gotSpec: &gotSpec})

	cases := []struct {
		name string
		pol  Policy
		want plan.Options
	}{
		{"zero policy maps to zero options", Policy{}, plan.Options{}},
		{"slots", Policy{Slots: 5}, plan.Options{Slots: 5}},
		{"segments", Policy{Segments: 4}, plan.Options{Segments: 4}},
		{"interval", Policy{Interval: 3}, plan.Options{Interval: 3}},
		{"disk slots", Policy{DiskSlots: 7}, plan.Options{DiskSlots: 7}},
		{"rho", Policy{Rho: 1.5}, plan.Options{Rho: 1.5}},
		{"memory budget", Policy{MemoryBudget: 1 << 20}, plan.Options{MemoryBudget: 1 << 20}},
		{"explicit backward ratio", Policy{Cost: checkpoint.CostModel{BackwardRatio: 3}}, plan.Options{BackwardRatio: 3}},
		// A zero BackwardRatio means "use the default": it must NOT be
		// forwarded as an explicit option.
		{"zero backward ratio stays unset", Policy{Cost: checkpoint.CostModel{}}, plan.Options{}},
		{"default cost model forwards its ratio", Policy{Cost: checkpoint.DefaultCostModel}, plan.Options{BackwardRatio: 2}},
		{"everything at once",
			Policy{Slots: 2, Segments: 3, Interval: 4, DiskSlots: 5, Rho: 1.25,
				MemoryBudget: 4096, Cost: checkpoint.CostModel{BackwardRatio: 1}},
			plan.Options{Slots: 2, Segments: 3, Interval: 4, DiskSlots: 5, Rho: 1.25,
				MemoryBudget: 4096, BackwardRatio: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, gotSpec = plan.Options{}, plan.ChainSpec{}
			tc.pol.Kind = "option-probe"
			if _, err := tc.pol.Plan(12); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("options mismatch:\n got  %+v\n want %+v", got, tc.want)
			}
			if gotSpec.Length != 12 {
				t.Fatalf("spec length %d, want 12", gotSpec.Length)
			}
		})
	}

	// The memory shape flows into the spec.
	got, gotSpec = plan.Options{}, plan.ChainSpec{}
	pol := Policy{Kind: "option-probe", WeightBytes: 1000, ActivationBytes: 64}
	if _, err := pol.Plan(9); err != nil {
		t.Fatal(err)
	}
	if gotSpec.WeightBytes != 1000 || gotSpec.ActivationBytes != 64 || gotSpec.Length != 9 {
		t.Fatalf("spec mapping wrong: %+v", gotSpec)
	}

	// And every built-in strategy is reachable through the same mapping:
	// the policy-planned schedule must trace identically to the directly
	// built one.
	builtins := []struct {
		pol  Policy
		opts []plan.Option
	}{
		{Policy{Kind: "storeall"}, nil},
		{Policy{Kind: "revolve", Slots: 3}, []plan.Option{plan.WithSlots(3)}},
		{Policy{Kind: "sequential", Segments: 3}, []plan.Option{plan.WithSegments(3)}},
		{Policy{Kind: "periodic", Interval: 4}, []plan.Option{plan.WithInterval(4)}},
		{Policy{Kind: "logspaced"}, nil},
		{Policy{Kind: "twolevel", Slots: 2, DiskSlots: 3}, []plan.Option{plan.WithSlots(2), plan.WithDiskSlots(3)}},
	}
	const l = 14
	for _, b := range builtins {
		t.Run(b.pol.Kind, func(t *testing.T) {
			fromPolicy, err := b.pol.Plan(l)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := plan.Build(b.pol.Kind, plan.ChainSpec{Length: l}, b.opts...)
			if err != nil {
				t.Fatal(err)
			}
			trP, err := schedule.Run(fromPolicy)
			if err != nil {
				t.Fatal(err)
			}
			trD, err := schedule.Run(direct)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(trP, trD) {
				t.Fatalf("policy-planned trace differs from direct plan:\n policy %+v\n direct %+v", trP, trD)
			}
		})
	}
}
