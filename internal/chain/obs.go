package chain

import (
	"sync/atomic"
	"time"

	"github.com/edgeml/edgetrain/obs"
)

// chainObs caches the metric handles for the hot step path, keyed by the
// registry identity, so an instrumented step costs one atomic pointer
// load plus a handful of atomic adds — and a disabled one costs only the
// pointer load. The cache re-resolves whenever obs.SetDefault swaps the
// registry.
type chainObs struct {
	reg *obs.Registry
	on  bool

	steps    *obs.Counter
	fwdEvals *obs.Counter
	bwdEvals *obs.Counter
	diskW    *obs.Counter
	diskR    *obs.Counter

	stepSec *obs.Histogram
	fwdSec  *obs.Histogram
	bwdSec  *obs.Histogram

	peakRAM  *obs.Gauge
	peakDisk *obs.Gauge
}

var chainObsCache atomic.Pointer[chainObs]

func obsHandles() *chainObs {
	r := obs.Default()
	if m := chainObsCache.Load(); m != nil && m.reg == r {
		return m
	}
	m := &chainObs{reg: r, on: r != nil}
	if r != nil {
		m.steps = r.Counter("chain_steps_total", "Checkpointed training steps executed.")
		m.fwdEvals = r.Counter("chain_forward_evals_total", "Stage forward executions (initial sweep plus recomputation).")
		m.bwdEvals = r.Counter("chain_backward_evals_total", "Stage adjoint executions (each includes its fused forward re-run).")
		m.diskW = r.Counter("chain_disk_writes_total", "Checkpoint states spilled to the store's disk tier.")
		m.diskR = r.Counter("chain_disk_reads_total", "Checkpoint states restored from the store's disk tier.")
		m.stepSec = r.Histogram("chain_step_seconds", "Wall-clock time of one forward+backward step.", nil)
		m.fwdSec = r.Histogram("chain_forward_seconds", "Per-step time in Advance forward sweeps (incl. recomputation).", nil)
		m.bwdSec = r.Histogram("chain_backward_seconds", "Per-step time in adjoint steps (incl. their fused forward re-runs).", nil)
		m.peakRAM = r.Gauge("chain_peak_state_bytes", "Largest per-step peak RAM footprint of retained states seen so far.")
		m.peakDisk = r.Gauge("chain_peak_disk_bytes", "Largest per-step peak of checkpoint bytes spilled to disk seen so far.")
	}
	chainObsCache.Store(m)
	return m
}

// record publishes one step's Result. Timings are collected only when the
// registry is enabled, so the zero durations of a disabled run never
// reach a histogram.
func (m *chainObs) record(res *Result, stepStart time.Time, fwd, bwd time.Duration) {
	if !m.on {
		return
	}
	step := time.Since(stepStart)
	m.steps.Inc()
	m.fwdEvals.Add(int64(res.ForwardEvals))
	m.bwdEvals.Add(int64(res.BackwardEvals))
	m.diskW.Add(int64(res.DiskWrites))
	m.diskR.Add(int64(res.DiskReads))
	m.stepSec.Observe(step.Seconds())
	m.fwdSec.Observe(fwd.Seconds())
	m.bwdSec.Observe(bwd.Seconds())
	m.peakRAM.SetMax(float64(res.PeakStateBytes))
	m.peakDisk.SetMax(float64(res.PeakDiskBytes))
}
