// Package fleetdemo builds the demonstration model and dataset shared by the
// fleet command-line tools (fleettrainer, edgecoord, edgeworker). The
// coordinator never ships code, only configuration — a distributed run is
// byte-identical to the in-process one precisely because every process
// reconstructs the same model and dataset from the same (seed, nodes,
// samples) triple, so these builders live in one place.
package fleetdemo

import (
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/resnet"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/internal/vision"
)

// Model returns the deterministic demo model factory: the small ResNet over
// the synthetic viewpoint data, seeded so every process that calls it with
// the same seed materialises bit-identical initial weights.
func Model(seed uint64) func() (*chain.Chain, error) {
	return func() (*chain.Chain, error) {
		cfg := resnet.DefaultSmallConfig()
		cfg.NumClasses = vision.NumClasses
		cfg.Seed = seed
		net, err := resnet.BuildSmall(cfg)
		if err != nil {
			return nil, err
		}
		return chain.FromSequential(net), nil
	}
}

// Dataset builds the non-IID demo dataset: each worker's contiguous shard
// carries its own viewpoint skew, spread across the fleet. The total is
// distributed with the same split rule trainer.Shard applies, so the
// generated blocks are exactly the shards the workers will see.
func Dataset(nodes, samples int, seed uint64) *trainer.SliceDataset {
	rng := tensor.NewRNG(seed + 1)
	var ds []trainer.Batch
	for i := 0; i < nodes; i++ {
		vp := 0.2
		if nodes > 1 {
			vp += 0.7 * float64(i) / float64(nodes-1)
		}
		lo, hi := trainer.ShardRange(samples, nodes, i)
		for j := 0; j < hi-lo; j++ {
			c := vision.Class(j % vision.NumClasses)
			ds = append(ds, trainer.Batch{Images: vision.Sample(rng, c, vp, 16), Labels: []int{int(c)}})
		}
	}
	return trainer.NewSliceDataset(ds)
}
