package edgesim

import (
	"fmt"
	"math"
	"strings"
)

// Federated-style model updates are the natural middle ground between the
// paper's two poles (ship all data to the cloud vs. train fully in situ):
// every node trains locally but periodically exchanges model-sized updates
// with an aggregator. Section I argues this is exactly the case where Edge
// training stops being attractive — "transferring a model update back and
// forth between the different nodes might introduce excessive communication".
// This file quantifies that trade-off so the ablation benchmarks can show
// where each strategy wins.

// FederatedConfig describes a federated-averaging style deployment.
type FederatedConfig struct {
	Fleet FleetConfig
	// Rounds is the number of aggregation rounds over the simulated period.
	Rounds int
	// UpdateFraction is the size of one uploaded update relative to the full
	// model (1.0 for full weights, smaller for sparsified/quantised updates).
	UpdateFraction float64
	// Participation is the fraction of nodes selected per round (partial
	// participation); zero means full participation. The selected count is
	// max(1, round(Participation*Nodes)) — the same rule the executable
	// fleet package applies, so the two accountings agree exactly.
	Participation float64
}

// ParticipantsPerRound returns how many nodes exchange updates in one round
// under the participation fraction p (zero meaning full participation).
func ParticipantsPerRound(nodes int, p float64) int {
	if p <= 0 || p >= 1 {
		return nodes
	}
	k := int(math.Round(p * float64(nodes)))
	if k < 1 {
		k = 1
	}
	if k > nodes {
		k = nodes
	}
	return k
}

// DefaultFederatedConfig runs weekly aggregation rounds with full-model
// updates over the default fleet.
func DefaultFederatedConfig() FederatedConfig {
	return FederatedConfig{
		Fleet:          DefaultFleetConfig(),
		Rounds:         4,
		UpdateFraction: 1.0,
	}
}

// FederatedResult extends Result with the round structure of the exchange.
type FederatedResult struct {
	Result
	Rounds               int
	ParticipantsPerRound int   // nodes exchanging updates in one round
	BytesPerRound        int64 // per participating node: upload + download of one round
	UsefulWhenLocal      bool  // whether the per-node specialisation survives averaging
}

// SimulateFederated computes the traffic and energy of the federated strategy
// and returns it alongside the plain strategies for comparison.
func SimulateFederated(cfg FederatedConfig) (FederatedResult, []Result, error) {
	if cfg.Rounds <= 0 {
		return FederatedResult{}, nil, fmt.Errorf("edgesim: federated rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.UpdateFraction <= 0 || cfg.UpdateFraction > 1 {
		return FederatedResult{}, nil, fmt.Errorf("edgesim: update fraction %v outside (0, 1]", cfg.UpdateFraction)
	}
	if cfg.Participation < 0 || cfg.Participation > 1 {
		return FederatedResult{}, nil, fmt.Errorf("edgesim: participation %v outside [0, 1]", cfg.Participation)
	}
	base, err := Simulate(cfg.Fleet)
	if err != nil {
		return FederatedResult{}, nil, err
	}

	node := cfg.Fleet.Node
	updateBytes := int64(float64(node.ModelBytes) * cfg.UpdateFraction)
	perRound := updateBytes + node.ModelBytes // upload the update, download the aggregate
	participants := int64(ParticipantsPerRound(cfg.Fleet.Nodes, cfg.Participation))

	res := FederatedResult{
		Rounds:               cfg.Rounds,
		ParticipantsPerRound: int(participants),
		BytesPerRound:        perRound,
	}
	res.Strategy = "federated"
	res.UplinkBytes = participants * updateBytes * int64(cfg.Rounds)
	res.DownlinkBytes = participants * node.ModelBytes * int64(cfg.Rounds)
	res.SensitiveImagesShared = 0
	res.Specialised = false // averaging across viewpoints undoes per-node specialisation
	res.UsefulWhenLocal = false
	res.NodeRadioEnergyJ = float64(participants) * cfg.Fleet.Edge.TransferEnergyJoules(perRound*int64(cfg.Rounds))

	// Local training cost is the same as the edge-training strategy.
	for _, r := range base {
		if r.Strategy == StrategyEdgeTraining {
			res.NodeComputeEnergyJ = r.NodeComputeEnergyJ
			res.CapturedImages = r.CapturedImages
			res.StorageOK = r.StorageOK
		}
	}
	periodSeconds := float64(cfg.Fleet.Days) * 24 * 3600
	res.MeanUplinkMbpsPerNode = float64(res.UplinkBytes) / float64(cfg.Fleet.Nodes) * 8 / periodSeconds / 1e6
	return res, base, nil
}

// RenderFederated formats the federated result next to the plain strategies.
func RenderFederated(fed FederatedResult, base []Result) string {
	var b strings.Builder
	b.WriteString(Render(append(append([]Result{}, base...), fed.Result)))
	fmt.Fprintf(&b, "\nfederated exchange: %d rounds of %.1f MB per node per round (%d participants/round)\n",
		fed.Rounds, float64(fed.BytesPerRound)/1e6, fed.ParticipantsPerRound)
	b.WriteString("note: averaging across nodes undoes the per-viewpoint specialisation that Section III is after;\n")
	b.WriteString("federated updates are attractive when nodes share a common viewpoint distribution, not here.\n")
	return b.String()
}
