package edgesim

import (
	"strings"
	"testing"
)

func TestSimulateFederatedTrafficOrdering(t *testing.T) {
	fed, base, err := SimulateFederated(DefaultFederatedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cloud, edge Result
	for _, r := range base {
		switch r.Strategy {
		case StrategyCloudTraining:
			cloud = r
		case StrategyEdgeTraining:
			edge = r
		}
	}
	// The expected ordering of network traffic: edge < federated < cloud.
	if fed.TotalNetworkBytes() <= edge.TotalNetworkBytes() {
		t.Fatalf("federated traffic %d should exceed edge-training traffic %d", fed.TotalNetworkBytes(), edge.TotalNetworkBytes())
	}
	if fed.TotalNetworkBytes() >= cloud.TotalNetworkBytes() {
		t.Fatalf("federated traffic %d should stay below cloud-training traffic %d", fed.TotalNetworkBytes(), cloud.TotalNetworkBytes())
	}
	// Federated exchange keeps raw images on the node but loses the
	// per-viewpoint specialisation.
	if fed.SensitiveImagesShared != 0 {
		t.Fatal("federated exchange must not ship raw images")
	}
	if fed.Specialised {
		t.Fatal("averaged models are not per-viewpoint specialised")
	}
	if fed.NodeComputeEnergyJ <= 0 {
		t.Fatal("federated nodes still train locally")
	}
}

func TestSimulateFederatedScalesWithRounds(t *testing.T) {
	cfg := DefaultFederatedConfig()
	cfg.Rounds = 2
	two, _, err := SimulateFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rounds = 8
	eight, _, err := SimulateFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eight.UplinkBytes != 4*two.UplinkBytes {
		t.Fatalf("uplink should scale linearly with rounds: %d vs %d", eight.UplinkBytes, two.UplinkBytes)
	}
}

func TestSimulateFederatedSparsification(t *testing.T) {
	cfg := DefaultFederatedConfig()
	full, _, err := SimulateFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.UpdateFraction = 0.1
	sparse, _, err := SimulateFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.UplinkBytes >= full.UplinkBytes {
		t.Fatal("sparsified updates should reduce uplink traffic")
	}
	if sparse.DownlinkBytes != full.DownlinkBytes {
		t.Fatal("the aggregated model download is unchanged by sparsification")
	}
}

func TestSimulateFederatedValidation(t *testing.T) {
	cfg := DefaultFederatedConfig()
	cfg.Rounds = 0
	if _, _, err := SimulateFederated(cfg); err == nil {
		t.Fatal("zero rounds accepted")
	}
	cfg = DefaultFederatedConfig()
	cfg.UpdateFraction = 0
	if _, _, err := SimulateFederated(cfg); err == nil {
		t.Fatal("zero update fraction accepted")
	}
	cfg = DefaultFederatedConfig()
	cfg.Fleet.Nodes = 0
	if _, _, err := SimulateFederated(cfg); err == nil {
		t.Fatal("invalid fleet accepted")
	}
}

func TestRenderFederated(t *testing.T) {
	fed, base, err := SimulateFederated(DefaultFederatedConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFederated(fed, base)
	if !strings.Contains(out, "federated") || !strings.Contains(out, "rounds") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestSimulateFederatedPartialParticipation(t *testing.T) {
	cfg := DefaultFederatedConfig()
	full, _, err := SimulateFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Participation = 0.5
	half, _, err := SimulateFederated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := ParticipantsPerRound(cfg.Fleet.Nodes, 0.5)
	if half.ParticipantsPerRound != k {
		t.Fatalf("participants %d, want %d", half.ParticipantsPerRound, k)
	}
	wantUp := full.UplinkBytes * int64(k) / int64(cfg.Fleet.Nodes)
	if half.UplinkBytes != wantUp {
		t.Fatalf("uplink %d, want %d", half.UplinkBytes, wantUp)
	}
	if half.DownlinkBytes >= full.DownlinkBytes {
		t.Fatalf("partial participation should cut downlink: %d vs %d", half.DownlinkBytes, full.DownlinkBytes)
	}
	// Per-participant round traffic is unchanged; only the participant count moves.
	if half.BytesPerRound != full.BytesPerRound {
		t.Fatalf("per-node round bytes changed: %d vs %d", half.BytesPerRound, full.BytesPerRound)
	}
	cfg.Participation = 1.5
	if _, _, err := SimulateFederated(cfg); err == nil {
		t.Fatal("participation > 1 accepted")
	}
}

func TestParticipantsPerRound(t *testing.T) {
	cases := []struct {
		nodes int
		p     float64
		want  int
	}{
		{10, 0, 10}, {10, 1, 10}, {10, 0.5, 5}, {10, 0.26, 3},
		{10, 0.01, 1}, {3, 0.5, 2}, {1, 0.1, 1},
	}
	for _, tc := range cases {
		if got := ParticipantsPerRound(tc.nodes, tc.p); got != tc.want {
			t.Errorf("ParticipantsPerRound(%d, %v) = %d, want %d", tc.nodes, tc.p, got, tc.want)
		}
	}
}
