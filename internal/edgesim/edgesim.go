// Package edgesim simulates an Array-of-Things style fleet of camera nodes
// and quantifies the "why" of Section I: the data movement, energy and
// privacy consequences of training centrally in the cloud versus in situ on
// each Edge node.
//
// The simulation is deliberately simple: each node captures labelled training
// images at some rate (produced by the teacher/tracker pipeline of Section
// III), and a model-update strategy decides what has to cross the network.
package edgesim

import (
	"fmt"
	"strings"

	"github.com/edgeml/edgetrain/internal/device"
	"github.com/edgeml/edgetrain/internal/tensor"
)

// NodeConfig describes one sensor node's workload.
type NodeConfig struct {
	// DetectionsPerDay is the mean number of tracked subjects per day; each
	// detection contributes TrackLength auto-labelled training images.
	DetectionsPerDay float64
	// TrackLength is the number of frames the tracker extracts per detection
	// ("every such instance ... contributes tens of images").
	TrackLength int
	// ImageBytes is the stored size of one training image (about 10 kB at the
	// 224x224 resolution discussed in Section III).
	ImageBytes int64
	// ModelBytes is the size of the student model that would have to be
	// shipped to or from the cloud.
	ModelBytes int64
	// TrainingFLOPsPerImage is the compute cost of one training epoch-image.
	TrainingFLOPsPerImage int64
	// Epochs is the number of passes over the captured set per retraining.
	Epochs int
}

// DefaultNodeConfig returns a plausible street-camera workload: 200 tracked
// subjects per day, 30 frames per track, 10 kB per stored frame, a 45 MB
// student model (ResNet-18 weights at fp32) retrained weekly for 3 epochs.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		DetectionsPerDay:      200,
		TrackLength:           30,
		ImageBytes:            10 << 10,
		ModelBytes:            45 << 20,
		TrainingFLOPsPerImage: 6e9,
		Epochs:                3,
	}
}

// Strategy enumerates where training happens.
type Strategy string

// The three model-update strategies compared by the simulation.
const (
	// StrategyCloudTraining uploads every captured training image to the
	// cloud, trains there, and downloads the specialised model.
	StrategyCloudTraining Strategy = "cloud-training"
	// StrategyEdgeTraining trains in situ; only telemetry-sized metadata
	// leaves the node.
	StrategyEdgeTraining Strategy = "edge-training"
	// StrategyStaticModel never specialises the model: a generic model is
	// downloaded once and the viewpoint problem is simply tolerated.
	StrategyStaticModel Strategy = "static-model"
)

// Strategies lists the compared strategies in presentation order.
var Strategies = []Strategy{StrategyCloudTraining, StrategyEdgeTraining, StrategyStaticModel}

// FleetConfig describes the simulated deployment.
type FleetConfig struct {
	Nodes int
	Days  int
	Node  NodeConfig
	// Edge is the node hardware; Cloud is the datacentre hardware.
	Edge  device.Device
	Cloud device.Device
	Seed  uint64
}

// DefaultFleetConfig returns a Chicago-scale deployment: 150 nodes (the Array
// of Things had "hundreds"), 30 days, Waggle hardware.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Nodes: 150,
		Days:  30,
		Node:  DefaultNodeConfig(),
		Edge:  device.Waggle(),
		Cloud: device.CloudGPU(),
		Seed:  1,
	}
}

// Result aggregates one strategy's cost over the whole fleet and period.
type Result struct {
	Strategy Strategy
	// UplinkBytes is the total data leaving the nodes.
	UplinkBytes int64
	// DownlinkBytes is the total data pushed to the nodes (model updates).
	DownlinkBytes int64
	// SensitiveImagesShared counts raw camera images that left a node: the
	// privacy exposure of Section I.
	SensitiveImagesShared int64
	// NodeRadioEnergyJ is the fleet's radio energy for the transfers.
	NodeRadioEnergyJ float64
	// NodeComputeEnergyJ is the fleet's energy spent training in situ.
	NodeComputeEnergyJ float64
	// CloudComputeEnergyJ is the datacentre energy spent training.
	CloudComputeEnergyJ float64
	// MeanUplinkMbpsPerNode is the sustained per-node uplink bandwidth needed.
	MeanUplinkMbpsPerNode float64
	// Specialised reports whether the strategy produces per-viewpoint models
	// (the accuracy benefit of Section III).
	Specialised bool
	// CapturedImages is the number of auto-labelled images produced per node
	// on average (identical across strategies; reported for context).
	CapturedImages int64
	// StorageOK reports whether the captured set fits the node storage.
	StorageOK bool
}

// TotalNetworkBytes is uplink plus downlink traffic.
func (r Result) TotalNetworkBytes() int64 { return r.UplinkBytes + r.DownlinkBytes }

// Simulate runs the fleet simulation for every strategy.
func Simulate(cfg FleetConfig) ([]Result, error) {
	if cfg.Nodes <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("edgesim: need positive node count and days, got %d nodes over %d days", cfg.Nodes, cfg.Days)
	}
	if cfg.Node.TrackLength <= 0 || cfg.Node.ImageBytes <= 0 {
		return nil, fmt.Errorf("edgesim: invalid node configuration %+v", cfg.Node)
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Per-node captured images over the period (Poisson-ish noise around the
	// configured rate so nodes differ).
	captured := make([]int64, cfg.Nodes)
	var totalCaptured int64
	for n := 0; n < cfg.Nodes; n++ {
		rate := cfg.Node.DetectionsPerDay * (0.7 + 0.6*rng.Float64())
		images := int64(rate*float64(cfg.Days)) * int64(cfg.Node.TrackLength)
		captured[n] = images
		totalCaptured += images
	}
	meanCaptured := totalCaptured / int64(cfg.Nodes)
	storageOK := cfg.Edge.Storage(cfg.Node.ImageBytes).ImagesThatFit >= meanCaptured

	trainFLOPsPerNode := float64(meanCaptured) * float64(cfg.Node.TrainingFLOPsPerImage) * float64(cfg.Node.Epochs)
	periodSeconds := float64(cfg.Days) * 24 * 3600

	var out []Result
	for _, strat := range Strategies {
		r := Result{Strategy: strat, CapturedImages: meanCaptured, StorageOK: storageOK}
		switch strat {
		case StrategyCloudTraining:
			for n := 0; n < cfg.Nodes; n++ {
				r.UplinkBytes += captured[n] * cfg.Node.ImageBytes
			}
			r.DownlinkBytes = int64(cfg.Nodes) * cfg.Node.ModelBytes
			r.SensitiveImagesShared = totalCaptured
			r.NodeRadioEnergyJ = float64(cfg.Nodes) * cfg.Edge.TransferEnergyJoules(r.TotalNetworkBytes()/int64(cfg.Nodes))
			cloudSeconds := cfg.Cloud.TrainingStepSeconds(int64(trainFLOPsPerNode)) * float64(cfg.Nodes)
			r.CloudComputeEnergyJ = cfg.Cloud.ComputeEnergyJoules(cloudSeconds)
			r.Specialised = true
		case StrategyEdgeTraining:
			// Only compact telemetry leaves the node (training metrics), and
			// the teacher model is downloaded once per node.
			const telemetryBytes = 64 << 10
			r.UplinkBytes = int64(cfg.Nodes) * telemetryBytes
			r.DownlinkBytes = int64(cfg.Nodes) * cfg.Node.ModelBytes // one-time teacher download
			r.SensitiveImagesShared = 0
			r.NodeRadioEnergyJ = float64(cfg.Nodes) * cfg.Edge.TransferEnergyJoules(r.TotalNetworkBytes()/int64(cfg.Nodes))
			edgeSeconds := cfg.Edge.TrainingStepSeconds(int64(trainFLOPsPerNode))
			r.NodeComputeEnergyJ = float64(cfg.Nodes) * cfg.Edge.ComputeEnergyJoules(edgeSeconds)
			r.Specialised = true
		case StrategyStaticModel:
			r.DownlinkBytes = int64(cfg.Nodes) * cfg.Node.ModelBytes
			r.NodeRadioEnergyJ = float64(cfg.Nodes) * cfg.Edge.TransferEnergyJoules(cfg.Node.ModelBytes)
			r.Specialised = false
		}
		r.MeanUplinkMbpsPerNode = float64(r.UplinkBytes) / float64(cfg.Nodes) * 8 / periodSeconds / 1e6
		out = append(out, r)
	}
	return out, nil
}

// Render formats the comparison as a table.
func Render(results []Result) string {
	var b strings.Builder
	b.WriteString("Edge vs cloud training: fleet data movement and energy\n")
	fmt.Fprintf(&b, "%-16s%16s%16s%14s%16s%16s%14s%12s\n",
		"strategy", "uplink (GB)", "downlink (GB)", "images out", "radio (kJ)", "edge cpu (kJ)", "cloud (kJ)", "special.")
	for _, r := range results {
		fmt.Fprintf(&b, "%-16s%16.2f%16.2f%14d%16.1f%16.1f%14.1f%12v\n",
			string(r.Strategy),
			float64(r.UplinkBytes)/1e9,
			float64(r.DownlinkBytes)/1e9,
			r.SensitiveImagesShared,
			r.NodeRadioEnergyJ/1e3,
			r.NodeComputeEnergyJ/1e3,
			r.CloudComputeEnergyJ/1e3,
			r.Specialised)
	}
	return b.String()
}
