package edgesim

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/device"
)

func TestSimulateDefaultFleet(t *testing.T) {
	results, err := Simulate(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Strategies) {
		t.Fatalf("expected %d strategies, got %d", len(Strategies), len(results))
	}
	byStrategy := map[Strategy]Result{}
	for _, r := range results {
		byStrategy[r.Strategy] = r
	}
	cloud := byStrategy[StrategyCloudTraining]
	edge := byStrategy[StrategyEdgeTraining]
	static := byStrategy[StrategyStaticModel]

	// The paper's argument: transferring training data to the cloud costs far
	// more network traffic than training in situ.
	if cloud.UplinkBytes < 10*edge.UplinkBytes {
		t.Fatalf("cloud training uplink %d should dwarf edge training uplink %d", cloud.UplinkBytes, edge.UplinkBytes)
	}
	// Privacy: only cloud training ships raw images off the node.
	if cloud.SensitiveImagesShared == 0 {
		t.Fatal("cloud training must expose captured images")
	}
	if edge.SensitiveImagesShared != 0 || static.SensitiveImagesShared != 0 {
		t.Fatal("edge training and static models must not expose images")
	}
	// Radio energy follows traffic.
	if cloud.NodeRadioEnergyJ <= edge.NodeRadioEnergyJ {
		t.Fatal("cloud training should cost more radio energy than edge training")
	}
	// Edge training pays with local compute energy instead.
	if edge.NodeComputeEnergyJ <= 0 {
		t.Fatal("edge training must spend node compute energy")
	}
	if cloud.NodeComputeEnergyJ != 0 {
		t.Fatal("cloud training should not spend node compute energy on training")
	}
	// Only the training strategies specialise the per-node model.
	if !cloud.Specialised || !edge.Specialised || static.Specialised {
		t.Fatal("specialisation flags wrong")
	}
	// The captured working set fits the node storage (Section III).
	if !edge.StorageOK {
		t.Fatal("the captured dataset should fit the Waggle storage")
	}
}

func TestSimulateBandwidthScale(t *testing.T) {
	cfg := DefaultFleetConfig()
	results, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Strategy != StrategyCloudTraining {
			continue
		}
		// Sanity: the sustained per-node uplink must be far below the node's
		// 10 Mbps link (otherwise the simulation parameters are absurd), but
		// clearly non-zero.
		if r.MeanUplinkMbpsPerNode <= 0 || r.MeanUplinkMbpsPerNode > cfg.Edge.NetworkMbps {
			t.Fatalf("cloud-training uplink %.3f Mbps implausible", r.MeanUplinkMbpsPerNode)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.Nodes = 0
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("zero nodes accepted")
	}
	cfg = DefaultFleetConfig()
	cfg.Node.TrackLength = 0
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("zero track length accepted")
	}
}

func TestSimulateDeterministicForSeed(t *testing.T) {
	a, err := Simulate(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].UplinkBytes != b[i].UplinkBytes || a[i].CapturedImages != b[i].CapturedImages {
			t.Fatal("simulation is not deterministic for a fixed seed")
		}
	}
}

func TestRender(t *testing.T) {
	results, err := Simulate(DefaultFleetConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := Render(results)
	for _, s := range Strategies {
		if !strings.Contains(out, string(s)) {
			t.Fatalf("render missing strategy %s:\n%s", s, out)
		}
	}
}

func TestDefaultNodeConfigStorageClaim(t *testing.T) {
	// The default workload accumulates well under the node's storage over a
	// month: 200 detections/day * 30 frames * 10 kB * 30 days ≈ 1.8 GB.
	cfg := DefaultNodeConfig()
	bytes := int64(cfg.DetectionsPerDay) * int64(cfg.TrackLength) * cfg.ImageBytes * 30
	if bytes > device.Waggle().StorageBytes {
		t.Fatalf("default workload (%d bytes) should fit the Waggle storage", bytes)
	}
}

// Property: for any fleet size and duration, cloud-training uplink dominates
// edge-training uplink and total traffic scales with the node count.
func TestCloudDominatesEdgeTrafficProperty(t *testing.T) {
	f := func(nodesRaw, daysRaw, seedRaw uint8) bool {
		cfg := DefaultFleetConfig()
		cfg.Nodes = int(nodesRaw%50) + 1
		cfg.Days = int(daysRaw%60) + 1
		cfg.Seed = uint64(seedRaw) + 1
		results, err := Simulate(cfg)
		if err != nil {
			return false
		}
		var cloud, edge Result
		for _, r := range results {
			switch r.Strategy {
			case StrategyCloudTraining:
				cloud = r
			case StrategyEdgeTraining:
				edge = r
			}
		}
		return cloud.UplinkBytes > edge.UplinkBytes && cloud.SensitiveImagesShared > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
