package wire

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b bytes.Buffer
	PutUint32(&b, 0xdeadbeef)
	PutUint64(&b, 1<<60+7)
	PutInt64(&b, -42)
	PutFloat64(&b, math.Pi)
	PutString(&b, "hello")
	PutUvarint(&b, 0)
	PutUvarint(&b, 127)
	PutUvarint(&b, 128)
	PutUvarint(&b, math.MaxUint64)

	r := NewReader(b.Bytes())
	if v := r.Uint32("u32"); v != 0xdeadbeef {
		t.Fatalf("u32 = %x", v)
	}
	if v := r.Uint64("u64"); v != 1<<60+7 {
		t.Fatalf("u64 = %d", v)
	}
	if v := r.Int64("i64"); v != -42 {
		t.Fatalf("i64 = %d", v)
	}
	if v := r.Float64("f64"); v != math.Pi {
		t.Fatalf("f64 = %v", v)
	}
	if v := r.String("str"); v != "hello" {
		t.Fatalf("str = %q", v)
	}
	for i, want := range []uint64{0, 127, 128, math.MaxUint64} {
		if v := r.Uvarint("uv"); v != want {
			t.Fatalf("uvarint %d = %d, want %d", i, v, want)
		}
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintLengths(t *testing.T) {
	// One byte up to 127, two up to 16383 — the property delta coding of
	// sorted sparse indices relies on for its size win.
	for _, tc := range []struct {
		v uint64
		n int
	}{{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}, {math.MaxUint64, 10}} {
		var b bytes.Buffer
		PutUvarint(&b, tc.v)
		if b.Len() != tc.n {
			t.Fatalf("uvarint(%d) = %d bytes, want %d", tc.v, b.Len(), tc.n)
		}
	}
}

func TestTruncatedReadsPoison(t *testing.T) {
	cases := []func(r *Reader){
		func(r *Reader) { r.Uint32("x") },
		func(r *Reader) { r.Uint64("x") },
		func(r *Reader) { r.Float64("x") },
		func(r *Reader) { r.String("x") },
		func(r *Reader) { r.Uvarint("x") },
		func(r *Reader) { r.Take(4, "x") },
	}
	for i, read := range cases {
		r := NewReader([]byte{0xff})
		read(r)
		if i == 4 {
			// 0xff alone is an unterminated varint: continuation bit set,
			// nothing follows.
			if r.Err() == nil {
				t.Fatalf("case %d: truncated varint accepted", i)
			}
			continue
		}
		if r.Err() == nil {
			t.Fatalf("case %d: truncated read accepted", i)
		}
		// Poisoned readers keep failing and return zero values.
		if v := r.Uint64("y"); v != 0 {
			t.Fatalf("case %d: poisoned read returned %d", i, v)
		}
	}
}

func TestOverlongUvarintRejected(t *testing.T) {
	// 11 continuation bytes: binary.Uvarint reports overflow (n < 0).
	b := bytes.Repeat([]byte{0x80}, 11)
	r := NewReader(b)
	r.Uvarint("x")
	if r.Err() == nil {
		t.Fatal("overlong varint accepted")
	}
}

func TestStringImplausibleLength(t *testing.T) {
	var b bytes.Buffer
	PutUint32(&b, 1<<30) // length prefix far beyond the payload
	r := NewReader(b.Bytes())
	r.String("s")
	if r.Err() == nil {
		t.Fatal("implausible string length accepted")
	}
}

func TestDoneLeftover(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Take(2, "x")
	if err := r.Done(); err == nil {
		t.Fatal("leftover bytes not reported")
	}
}
