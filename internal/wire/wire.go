// Package wire holds the little-endian byte-cursor helpers shared by the
// durable checkpoint format (package ckpt) and the fleet coordination
// protocol (package coord): buffer writers for payload construction and a
// bounds-checked reader for payload parsing. Keeping them in one place pins
// the two consumers to one encoding discipline — every multi-byte integer in
// the repository's serialized formats is little-endian, every string is a
// uint32 length prefix followed by raw bytes, and every float64 travels as
// its IEEE-754 bit pattern.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// PutUint32 appends v little-endian.
func PutUint32(b *bytes.Buffer, v uint32) {
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], v)
	b.Write(s[:])
}

// PutUint64 appends v little-endian.
func PutUint64(b *bytes.Buffer, v uint64) {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], v)
	b.Write(s[:])
}

// PutInt64 appends v little-endian (two's complement).
func PutInt64(b *bytes.Buffer, v int64) { PutUint64(b, uint64(v)) }

// PutFloat64 appends v as its IEEE-754 bit pattern, little-endian.
func PutFloat64(b *bytes.Buffer, v float64) { PutUint64(b, math.Float64bits(v)) }

// PutString appends a uint32 length prefix followed by the raw bytes.
func PutString(b *bytes.Buffer, s string) {
	PutUint32(b, uint32(len(s)))
	b.WriteString(s)
}

// PutUvarint appends v in unsigned LEB128 (7 bits per byte, little-endian,
// high bit marks continuation) — the compact integer encoding used for
// sparse-index delta coding in compressed updates.
func PutUvarint(b *bytes.Buffer, v uint64) {
	var s [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(s[:], v)
	b.Write(s[:n])
}

// Reader is a bounds-checked little-endian cursor over one payload. Every
// failed read records the first error and poisons all subsequent reads, so a
// parser can read an entire payload unconditionally and check Err (or Done)
// once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a cursor over the payload bytes.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (p *Reader) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("truncated payload reading %s at offset %d", what, p.off)
	}
}

// Take consumes n bytes, naming what they are for the error message. The
// returned slice aliases the payload; callers that retain it must copy.
func (p *Reader) Take(n int, what string) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || p.off+n > len(p.b) || p.off+n < p.off {
		p.fail(what)
		return nil
	}
	b := p.b[p.off : p.off+n]
	p.off += n
	return b
}

// Uint32 consumes a little-endian uint32.
func (p *Reader) Uint32(what string) uint32 {
	b := p.Take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 consumes a little-endian uint64.
func (p *Reader) Uint64(what string) uint64 {
	b := p.Take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 consumes a little-endian int64.
func (p *Reader) Int64(what string) int64 { return int64(p.Uint64(what)) }

// Float64 consumes an IEEE-754 bit pattern.
func (p *Reader) Float64(what string) float64 { return math.Float64frombits(p.Uint64(what)) }

// String consumes a uint32 length prefix and that many bytes.
func (p *Reader) String(what string) string {
	n := p.Uint32(what + " length")
	if p.err != nil {
		return ""
	}
	if n > uint32(len(p.b)) {
		p.fail(what)
		return ""
	}
	b := p.Take(int(n), what)
	return string(b)
}

// Uvarint consumes one unsigned LEB128 varint. Over-long encodings (more
// than 10 bytes, or a 10th byte carrying overflow) poison the reader.
func (p *Reader) Uvarint(what string) uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		p.fail(what)
		return 0
	}
	p.off += n
	return v
}

// Rest consumes and returns everything from the cursor to the end of the
// payload (possibly empty). The slice aliases the payload.
func (p *Reader) Rest() []byte {
	if p.err != nil {
		return nil
	}
	b := p.b[p.off:]
	p.off = len(p.b)
	return b
}

// Len reports how many unread bytes remain.
func (p *Reader) Len() int { return len(p.b) - p.off }

// Fail poisons the reader, for callers that validate a decoded value
// themselves and must reject the payload: a count or size can be well-formed
// on the wire yet implausible for the message carrying it.
func (p *Reader) Fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("implausible %s at offset %d", what, p.off)
	}
}

// Err returns the first read error, or nil.
func (p *Reader) Err() error { return p.err }

// Done returns the first read error, or an error if unread bytes remain — a
// fixed-layout payload must be consumed exactly.
func (p *Reader) Done() error {
	if p.err != nil {
		return p.err
	}
	if p.off != len(p.b) {
		return fmt.Errorf("%d leftover bytes in payload", len(p.b)-p.off)
	}
	return nil
}
