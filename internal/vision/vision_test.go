package vision

import (
	"testing"
	"testing/quick"

	"github.com/edgeml/edgetrain/internal/tensor"
)

func TestRenderBasics(t *testing.T) {
	rng := tensor.NewRNG(1)
	img := Render(rng, RenderParams{Size: 16, Class: Square, CenterX: 0.5, CenterY: 0.5, Scale: 0.35})
	if img.Rank() != 4 || img.Dim(2) != 16 || img.Dim(3) != 16 {
		t.Fatalf("render shape %v", img.Shape())
	}
	lo, _ := img.Min()
	hi, _ := img.Max()
	if lo < 0 || hi > 1 {
		t.Fatalf("pixel range [%v, %v] outside [0,1]", lo, hi)
	}
	// A centred square must light up the central pixel and leave a corner dark.
	if img.At(0, 0, 8, 8) < 0.9 {
		t.Fatal("centre pixel should be foreground")
	}
	if img.At(0, 0, 0, 0) > 0.2 {
		t.Fatal("corner pixel should be background")
	}
	// Defaults applied for zero size/scale.
	d := Render(nil, RenderParams{Class: Disk, CenterX: 0.5, CenterY: 0.5})
	if d.Dim(2) != 16 {
		t.Fatalf("default size not applied: %v", d.Shape())
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	rng := tensor.NewRNG(2)
	base := RenderParams{Size: 16, CenterX: 0.5, CenterY: 0.5, Scale: 0.35}
	imgs := make([]*tensor.Tensor, NumClasses)
	for c := 0; c < NumClasses; c++ {
		p := base
		p.Class = Class(c)
		imgs[c] = Render(rng, p)
	}
	for i := 0; i < NumClasses; i++ {
		for j := i + 1; j < NumClasses; j++ {
			if tensor.MaxAbsDiff(imgs[i], imgs[j]) < 0.5 {
				t.Errorf("classes %v and %v render almost identically", Class(i), Class(j))
			}
		}
	}
}

func TestViewpointChangesAppearance(t *testing.T) {
	rng := tensor.NewRNG(3)
	p := RenderParams{Size: 16, Class: Disk, CenterX: 0.5, CenterY: 0.5, Scale: 0.35}
	canonical := Render(rng, p)
	p.Viewpoint = 0.9
	skewed := Render(rng, p)
	if tensor.MaxAbsDiff(canonical, skewed) < 0.5 {
		t.Fatal("a strong viewpoint change should alter the image substantially")
	}
	// The squash reduces the number of lit pixels.
	if skewed.Sum() >= canonical.Sum() {
		t.Fatalf("squashed subject should cover fewer pixels: %v vs %v", skewed.Sum(), canonical.Sum())
	}
}

func TestClassString(t *testing.T) {
	if Square.String() != "square" || Stripes.String() != "stripes" {
		t.Fatal("class names wrong")
	}
	if Class(17).String() == "" {
		t.Fatal("unknown class should still render")
	}
}

func TestDatasetBalanced(t *testing.T) {
	rng := tensor.NewRNG(4)
	set := Dataset(rng, 40, 0.2, 16)
	if set.Len() != 40 {
		t.Fatalf("dataset size %d", set.Len())
	}
	counts := map[int]int{}
	for _, l := range set.Labels {
		counts[l]++
	}
	for c := 0; c < NumClasses; c++ {
		if counts[c] != 10 {
			t.Fatalf("class %d has %d samples, want 10", c, counts[c])
		}
	}
}

func TestGenerateTrackProperties(t *testing.T) {
	rng := tensor.NewRNG(5)
	tr := GenerateTrack(rng, Cross, 0.8, 10, 16)
	if len(tr.Frames) != 10 || len(tr.Viewpoints) != 10 {
		t.Fatalf("track length wrong: %d frames", len(tr.Frames))
	}
	if tr.Viewpoints[0] <= tr.Viewpoints[len(tr.Viewpoints)-1] {
		t.Fatal("viewpoint skew should decay along the track")
	}
	if tr.Viewpoints[len(tr.Viewpoints)-1] > 0.15 {
		t.Fatalf("final frame should be nearly canonical, got %v", tr.Viewpoints[len(tr.Viewpoints)-1])
	}
	// The subject should move to the right across the track.
	first := Detect(tr.Frames[0])
	last := Detect(tr.Frames[len(tr.Frames)-1])
	if !first.Found || !last.Found {
		t.Fatal("tracker should find the subject in the first and last frames")
	}
	if last.CenterX <= first.CenterX {
		t.Fatalf("subject should move rightwards: %v -> %v", first.CenterX, last.CenterX)
	}
	// Degenerate length is clamped.
	short := GenerateTrack(rng, Disk, 0.5, 1, 16)
	if len(short.Frames) != 2 {
		t.Fatalf("track length should clamp to 2, got %d", len(short.Frames))
	}
}

func TestDetectEmptyFrame(t *testing.T) {
	empty := tensor.New(1, 1, 16, 16)
	if Detect(empty).Found {
		t.Fatal("an empty frame must not produce a detection")
	}
}

func TestDetectCentroidAccuracy(t *testing.T) {
	img := Render(nil, RenderParams{Size: 32, Class: Disk, CenterX: 0.25, CenterY: 0.75, Scale: 0.15})
	d := Detect(img)
	if !d.Found {
		t.Fatal("disk not detected")
	}
	// Expected centroid near (0.25*32, 0.75*32) = (8, 24).
	if d.CenterX < 6 || d.CenterX > 10 || d.CenterY < 22 || d.CenterY > 26 {
		t.Fatalf("centroid (%.1f, %.1f) far from (8, 24)", d.CenterX, d.CenterY)
	}
	if d.MinX > int(d.CenterX) || d.MaxX < int(d.CenterX) {
		t.Fatal("bounding box does not contain the centroid")
	}
}

func TestTrackObjectConsistency(t *testing.T) {
	rng := tensor.NewRNG(6)
	tr := GenerateTrack(rng, Square, 0.7, 12, 16)
	res := TrackObject(tr, DefaultTrackerConfig)
	if !res.Consistent {
		t.Fatal("a well-formed synthetic track should be consistent")
	}
	if len(res.Detections) != 12 {
		t.Fatalf("expected 12 detections, got %d", len(res.Detections))
	}

	// A track with a teleporting subject must be rejected.
	jumpy := Track{Class: Square}
	jumpy.Frames = append(jumpy.Frames,
		Render(rng, RenderParams{Size: 16, Class: Square, CenterX: 0.2, CenterY: 0.5, Scale: 0.2}),
		Render(rng, RenderParams{Size: 16, Class: Square, CenterX: 0.85, CenterY: 0.5, Scale: 0.2}),
	)
	if TrackObject(jumpy, DefaultTrackerConfig).Consistent {
		t.Fatal("a large jump between frames should break consistency")
	}

	// A track with an empty frame must be rejected.
	withGap := Track{Class: Disk}
	withGap.Frames = append(withGap.Frames,
		Render(rng, RenderParams{Size: 16, Class: Disk, CenterX: 0.5, CenterY: 0.5, Scale: 0.3}),
		tensor.New(1, 1, 16, 16),
	)
	if TrackObject(withGap, DefaultTrackerConfig).Consistent {
		t.Fatal("a frame without a subject should break consistency")
	}

	// An empty track is inconsistent.
	if TrackObject(Track{}, DefaultTrackerConfig).Consistent {
		t.Fatal("an empty track cannot be consistent")
	}
}

func TestLabelledSetAppend(t *testing.T) {
	s := &LabelledSet{}
	s.Append(tensor.New(1, 1, 4, 4), 2)
	if s.Len() != 1 || s.Labels[0] != 2 {
		t.Fatal("Append failed")
	}
}

// Property: rendering is deterministic for a nil RNG and bounded in [0, 1]
// for any parameters.
func TestRenderBoundedProperty(t *testing.T) {
	f := func(classRaw, vpRaw, posRaw uint8) bool {
		p := RenderParams{
			Size:      16,
			Class:     Class(int(classRaw) % NumClasses),
			CenterX:   0.2 + 0.6*float64(posRaw)/255,
			CenterY:   0.2 + 0.6*float64(posRaw)/255,
			Scale:     0.3,
			Viewpoint: float64(vpRaw) / 255,
		}
		a := Render(nil, p)
		b := Render(nil, p)
		if !tensor.AllClose(a, b, 0) {
			return false
		}
		lo, _ := a.Min()
		hi, _ := a.Max()
		return lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
