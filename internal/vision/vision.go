// Package vision provides the synthetic visual workload used to reproduce the
// viewpoint problem of Section III: a parametric scene generator whose
// "camera viewpoint" skews the rendered objects, a frame-sequence generator
// that moves a subject across the field of view, and a simple object tracker
// that propagates a label from the frame where the teacher recognised the
// subject back through the earlier frames.
//
// The paper's deployment uses real street-camera footage from the Array of
// Things, which is not available; the synthetic generator preserves the
// property the argument needs — a controlled distribution shift between the
// teacher's training viewpoint and the node's viewpoint — while remaining
// fully reproducible.
package vision

import (
	"fmt"
	"math"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// Class is the category of the rendered subject.
type Class int

// The four synthetic subject categories.
const (
	Square Class = iota
	Disk
	Cross
	Stripes
)

// NumClasses is the number of subject categories.
const NumClasses = 4

// ClassNames maps classes to human-readable names.
var ClassNames = [NumClasses]string{"square", "disk", "cross", "stripes"}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return ClassNames[c]
}

// RenderParams describes one rendered frame.
type RenderParams struct {
	Size      int     // square frame side length in pixels
	Class     Class   // subject category
	CenterX   float64 // subject centre, in [0, 1] frame coordinates
	CenterY   float64
	Scale     float64 // subject half-size relative to the frame (0..0.5)
	Viewpoint float64 // camera skew in [0, 1]: 0 = canonical, 1 = extreme
	Noise     float64 // Gaussian pixel noise standard deviation
}

// shapeMembership reports whether the shape covers the local coordinate
// (u, v) in [-1, 1]^2 (the subject's own frame).
func shapeMembership(c Class, u, v float64) bool {
	switch c {
	case Square:
		return math.Abs(u) <= 0.85 && math.Abs(v) <= 0.85
	case Disk:
		return u*u+v*v <= 0.85*0.85
	case Cross:
		return (math.Abs(u) <= 0.3 && math.Abs(v) <= 0.95) || (math.Abs(v) <= 0.3 && math.Abs(u) <= 0.95)
	case Stripes:
		if math.Abs(u) > 0.9 || math.Abs(v) > 0.9 {
			return false
		}
		// Three horizontal bars.
		band := math.Mod(v+1, 0.66)
		return band < 0.33
	default:
		return false
	}
}

// Render draws one frame as a (1, 1, Size, Size) tensor with values in [0, 1].
// The viewpoint skew squashes the subject vertically and shears it
// horizontally, imitating a camera mounted above the scene at an angle.
func Render(rng *tensor.RNG, p RenderParams) *tensor.Tensor {
	if p.Size <= 0 {
		p.Size = 16
	}
	if p.Scale <= 0 {
		p.Scale = 0.35
	}
	img := tensor.New(1, 1, p.Size, p.Size)
	// Viewpoint transform parameters.
	squash := 1 - 0.65*p.Viewpoint // vertical compression
	shear := 0.9 * p.Viewpoint     // horizontal shear with height
	drop := 0.15 * p.Viewpoint     // subjects appear lower in the frame

	for y := 0; y < p.Size; y++ {
		for x := 0; x < p.Size; x++ {
			// Normalised frame coordinates in [0, 1].
			fx := (float64(x) + 0.5) / float64(p.Size)
			fy := (float64(y) + 0.5) / float64(p.Size)
			// Position relative to the subject centre, in subject units.
			dx := (fx - p.CenterX) / p.Scale
			dy := (fy - (p.CenterY + drop)) / p.Scale
			// Invert the viewpoint transform: the camera squashes v and
			// shears u by v, so the subject's own coordinates are recovered
			// by undoing that mapping.
			v := dy / squash
			u := dx - shear*v
			val := 0.0
			if shapeMembership(p.Class, u, v) {
				val = 1.0
			}
			if p.Noise > 0 && rng != nil {
				val += rng.Normal(0, p.Noise)
			}
			if val < 0 {
				val = 0
			}
			if val > 1 {
				val = 1
			}
			img.Set(val, 0, 0, y, x)
		}
	}
	return img
}

// Sample renders a frame of the given class with a randomised position and
// scale at the given viewpoint.
func Sample(rng *tensor.RNG, c Class, viewpoint float64, size int) *tensor.Tensor {
	return Render(rng, RenderParams{
		Size:      size,
		Class:     c,
		CenterX:   0.35 + 0.3*rng.Float64(),
		CenterY:   0.35 + 0.2*rng.Float64(),
		Scale:     0.28 + 0.12*rng.Float64(),
		Viewpoint: clamp01(viewpoint + rng.Normal(0, 0.03)),
		Noise:     0.06,
	})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// LabelledSet is a set of single-frame samples with labels, the common
// currency between the generator, the tracker and the trainer.
type LabelledSet struct {
	Images []*tensor.Tensor
	Labels []int
}

// Append adds one sample.
func (s *LabelledSet) Append(img *tensor.Tensor, label int) {
	s.Images = append(s.Images, img)
	s.Labels = append(s.Labels, label)
}

// Len returns the number of samples.
func (s *LabelledSet) Len() int { return len(s.Images) }

// Dataset generates n labelled frames uniformly over the classes at the given
// viewpoint.
func Dataset(rng *tensor.RNG, n int, viewpoint float64, size int) *LabelledSet {
	set := &LabelledSet{}
	for i := 0; i < n; i++ {
		c := Class(i % NumClasses)
		set.Append(Sample(rng, c, viewpoint, size), int(c))
	}
	return set
}

// Track is a sequence of frames following one subject across the field of
// view. The subject enters at the left under the node's full viewpoint skew
// and leaves at the right where the skew has decayed towards the canonical
// view — the situation in which the paper's teacher model finally recognises
// it.
type Track struct {
	Frames     []*tensor.Tensor
	Class      Class
	Viewpoints []float64
}

// GenerateTrack produces a track of n frames for a subject of class c on a
// node whose camera skew is nodeViewpoint.
func GenerateTrack(rng *tensor.RNG, c Class, nodeViewpoint float64, n, size int) Track {
	if n < 2 {
		n = 2
	}
	tr := Track{Class: c}
	scale := 0.3 + 0.1*rng.Float64()
	cy := 0.4 + 0.15*rng.Float64()
	for i := 0; i < n; i++ {
		progress := float64(i) / float64(n-1)
		// The subject walks from left to right; the skew relaxes towards the
		// canonical view only near the end of the track (quadratically), so
		// most harvested frames carry the node's characteristic distortion
		// while the final frame is recognisable by the canonical teacher.
		vp := nodeViewpoint * (1 - 0.92*progress*progress)
		p := RenderParams{
			Size:      size,
			Class:     c,
			CenterX:   0.24 + 0.42*progress,
			CenterY:   cy,
			Scale:     scale,
			Viewpoint: vp,
			Noise:     0.06,
		}
		tr.Frames = append(tr.Frames, Render(rng, p))
		tr.Viewpoints = append(tr.Viewpoints, vp)
	}
	return tr
}
