package vision

import (
	"math"

	"github.com/edgeml/edgetrain/internal/tensor"
)

// Detection is the tracker's summary of one frame: whether a subject was
// found, its intensity-weighted centroid (in pixel coordinates) and its mass
// (the number of foreground pixels).
type Detection struct {
	Found   bool
	CenterX float64
	CenterY float64
	Mass    float64
	MinX    int
	MinY    int
	MaxX    int
	MaxY    int
}

// DetectThreshold is the foreground intensity threshold used by the tracker.
const DetectThreshold = 0.55

// Detect locates the subject in a single (1, 1, H, W) frame by thresholding
// and computing the centroid and bounding box of the foreground pixels.
func Detect(frame *tensor.Tensor) Detection {
	h, w := frame.Dim(2), frame.Dim(3)
	d := Detection{MinX: w, MinY: h, MaxX: -1, MaxY: -1}
	var sx, sy float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if frame.At(0, 0, y, x) >= DetectThreshold {
				d.Mass++
				sx += float64(x)
				sy += float64(y)
				if x < d.MinX {
					d.MinX = x
				}
				if y < d.MinY {
					d.MinY = y
				}
				if x > d.MaxX {
					d.MaxX = x
				}
				if y > d.MaxY {
					d.MaxY = y
				}
			}
		}
	}
	if d.Mass < 4 {
		return Detection{}
	}
	d.Found = true
	d.CenterX = sx / d.Mass
	d.CenterY = sy / d.Mass
	return d
}

// TrackerConfig bounds how much the subject may move or change between
// consecutive frames for the tracker to consider it the same object.
type TrackerConfig struct {
	// MaxJump is the maximum centroid displacement between consecutive frames
	// in pixels.
	MaxJump float64
	// MaxMassRatio bounds the frame-to-frame change of the foreground mass.
	MaxMassRatio float64
}

// DefaultTrackerConfig matches the synthetic track generator (the subject
// moves a few pixels per frame).
var DefaultTrackerConfig = TrackerConfig{MaxJump: 5.0, MaxMassRatio: 2.5}

// TrackResult is the output of running the tracker over a frame sequence.
type TrackResult struct {
	Detections []Detection
	// Consistent is true when a subject was found in every frame and its
	// motion between consecutive frames stayed within the tracker bounds:
	// only then may a label from the final frame be propagated backwards.
	Consistent bool
}

// TrackObject runs the tracker over the frames of a Track.
func TrackObject(tr Track, cfg TrackerConfig) TrackResult {
	if cfg.MaxJump <= 0 {
		cfg = DefaultTrackerConfig
	}
	res := TrackResult{Consistent: true}
	var prev Detection
	for i, f := range tr.Frames {
		d := Detect(f)
		res.Detections = append(res.Detections, d)
		if !d.Found {
			res.Consistent = false
			continue
		}
		if i > 0 && prev.Found {
			jump := math.Hypot(d.CenterX-prev.CenterX, d.CenterY-prev.CenterY)
			if jump > cfg.MaxJump {
				res.Consistent = false
			}
			ratio := d.Mass / prev.Mass
			if ratio < 1/cfg.MaxMassRatio || ratio > cfg.MaxMassRatio {
				res.Consistent = false
			}
		}
		prev = d
	}
	if len(res.Detections) == 0 {
		res.Consistent = false
	}
	return res
}
