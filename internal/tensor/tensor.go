// Package tensor implements a small dense tensor library used by the
// neural-network and checkpointing substrates of the Training-on-the-Edge
// reproduction.
//
// Tensors are row-major, dense, float64 backed. The hot kernels (GEMM in
// matmul.go, convolution and pooling in conv.go) are cache-blocked,
// parallelized over disjoint output ranges via internal/parallel, and draw
// their scratch workspaces from a sync.Pool arena (pool.go), so steady-state
// training performs no per-call heap allocation inside the kernels. All
// kernels are bit-identical at any worker count: parallel chunk boundaries
// depend only on the problem shape, and every reduction folds per-chunk
// partials in fixed chunk order.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major multi-dimensional array of float64 values.
// The zero value is an empty tensor with no dimensions.
type Tensor struct {
	shape  []int
	stride []int
	data   []float64
}

// ErrShapeMismatch is returned when two tensors that must agree in shape do not.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// New creates a tensor of the given shape filled with zeros.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.stride = computeStrides(t.shape)
	return t
}

// FromSlice creates a tensor with the given shape that adopts data as its
// backing store. The length of data must equal the product of the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	t.stride = computeStrides(t.shape)
	return t
}

// Full creates a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones creates a tensor of the given shape filled with ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Eye creates an n-by-n identity matrix.
func Eye(n int) *Tensor {
	t := New(n, n)
	for i := 0; i < n; i++ {
		t.data[i*n+i] = 1
	}
	return t
}

// Arange creates a 1-D tensor holding 0, 1, ..., n-1.
func Arange(n int) *Tensor {
	t := New(n)
	for i := 0; i < n; i++ {
		t.data[i] = float64(i)
	}
	return t
}

func computeStrides(shape []int) []int {
	stride := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		stride[i] = s
		s *= shape[i]
	}
	return stride
}

// Shape returns a copy of the tensor's shape. The copy allocates; code on a
// hot path should prefer Dim and Rank, or NewLike/EnsureLike when the shape
// is only needed to size another tensor.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// NewLike returns a zeroed tensor with the same shape as t, without copying
// the shape slice out through Shape.
func (t *Tensor) NewLike() *Tensor { return New(t.shape...) }

// AppendShape appends t's shape to dst[:0] and returns the result. It is
// the non-copying alternative to Shape for callers that keep a reusable
// shape buffer (layer caches recording their input shape every forward).
func (t *Tensor) AppendShape(dst []int) []int { return append(dst[:0], t.shape...) }

// EnsureLike returns buf if it is non-nil and has the same shape as like,
// and a fresh zeroed tensor of like's shape otherwise. It lets layers keep
// a reusable cache buffer whose contents they fully overwrite each call;
// a recycled buffer is returned as-is (stale values included).
func EnsureLike(buf, like *Tensor) *Tensor {
	if buf != nil && buf.SameShape(like) {
		return buf
	}
	return like.NewLike()
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Bytes returns the number of bytes the element data occupies (8 bytes per
// element for float64 storage). It is used by memory-accounting code.
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 8 }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Reshape returns a view-copy of t with the new shape; the total number of
// elements must be unchanged. A dimension of -1 is inferred from the rest.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer != -1 {
				panic("tensor: only one dimension may be -1 in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for reshape of %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v (size %d)", t.shape, len(t.data), shape, n))
	}
	out := &Tensor{shape: shape, data: t.data, stride: computeStrides(shape)}
	return out
}

// index converts multi-dimensional indices to a flat offset.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: got %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", x, i, t.shape[i]))
		}
		off += x * t.stride[i]
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx...)] }

// Set assigns v to the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply applies f element-wise in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor with f applied element-wise.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	out := t.Clone()
	return out.Apply(f)
}

// AddInPlace adds o to t element-wise. Shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	mustSameShape(t, o)
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// SubInPlace subtracts o from t element-wise.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	mustSameShape(t, o)
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return t
}

// MulInPlace multiplies t by o element-wise.
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	mustSameShape(t, o)
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AxpyInPlace computes t += alpha*o element-wise.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) *Tensor {
	mustSameShape(t, o)
	for i := range t.data {
		t.data[i] += alpha * o.data[i]
	}
	return t
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor { return t.Clone().AddInPlace(o) }

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor { return t.Clone().SubInPlace(o) }

// Mul returns the element-wise product as a new tensor.
func Mul(t, o *Tensor) *Tensor { return t.Clone().MulInPlace(o) }

// Scale returns s*t as a new tensor.
func Scale(s float64, t *Tensor) *Tensor { return t.Clone().ScaleInPlace(s) }

func mustSameShape(a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("%v: %v vs %v", ErrShapeMismatch, a.shape, b.shape))
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for an empty tensor).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element and its flat index. It panics on empty tensors.
func (t *Tensor) Max() (float64, int) {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Min returns the minimum element and its flat index. It panics on empty tensors.
func (t *Tensor) Min() (float64, int) {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	best, arg := t.data[0], 0
	for i, v := range t.data {
		if v < best {
			best, arg = v, i
		}
	}
	return best, arg
}

// Norm returns the Euclidean (L2) norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of t and o viewed as flat vectors.
func Dot(t, o *Tensor) float64 {
	mustSameShape(t, o)
	s := 0.0
	for i := range t.data {
		s += t.data[i] * o.data[i]
	}
	return s
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires a rank-2 tensor, got rank %d", a.Rank()))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// ArgmaxRows returns, for a rank-2 tensor, the column index of the maximum of
// each row. It is used for classification predictions.
func ArgmaxRows(a *Tensor) []int {
	if a.Rank() != 2 {
		panic("tensor: ArgmaxRows requires a rank-2 tensor")
	}
	m, n := a.shape[0], a.shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		best := a.data[i*n]
		arg := 0
		for j := 1; j < n; j++ {
			if v := a.data[i*n+j]; v > best {
				best, arg = v, j
			}
		}
		out[i] = arg
	}
	return out
}

// AllClose reports whether every element of a and b differs by at most tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between a and b.
func MaxAbsDiff(a, b *Tensor) float64 {
	mustSameShape(a, b)
	m := 0.0
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > m {
			m = d
		}
	}
	return m
}

// String renders small tensors fully and large tensors by shape summary.
func (t *Tensor) String() string {
	if len(t.data) > 64 {
		return fmt.Sprintf("Tensor(shape=%v, size=%d)", t.shape, len(t.data))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor(shape=%v, data=[", t.shape)
	for i, v := range t.data {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", v)
	}
	b.WriteString("])")
	return b.String()
}
