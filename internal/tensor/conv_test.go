package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveConv2D is a direct (slow) reference convolution used to validate the
// im2col implementation.
func naiveConv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n, inC, inH, inW := input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	outC, _, kH, kW := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	outH := (inH+2*pad-kH)/stride + 1
	outW := (inW+2*pad-kW)/stride + 1
	out := New(n, outC, outH, outW)
	for b := 0; b < n; b++ {
		for oc := 0; oc < outC; oc++ {
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					acc := 0.0
					if bias != nil {
						acc = bias.At(oc)
					}
					for ic := 0; ic < inC; ic++ {
						for kh := 0; kh < kH; kh++ {
							for kw := 0; kw < kW; kw++ {
								ih := oh*stride - pad + kh
								iw := ow*stride - pad + kw
								if ih < 0 || ih >= inH || iw < 0 || iw >= inW {
									continue
								}
								acc += input.At(b, ic, ih, iw) * weight.At(oc, ic, kh, kw)
							}
						}
					}
					out.Set(acc, b, oc, oh, ow)
				}
			}
		}
	}
	return out
}

func TestConvGeomOutputSize(t *testing.T) {
	g := NewConvGeom(3, 224, 224, 64, 7, 7, 2, 3)
	if g.OutH != 112 || g.OutW != 112 {
		t.Fatalf("7x7 s2 p3 on 224 should give 112, got %dx%d", g.OutH, g.OutW)
	}
	g2 := NewConvGeom(64, 56, 56, 64, 3, 3, 1, 1)
	if g2.OutH != 56 || g2.OutW != 56 {
		t.Fatalf("3x3 s1 p1 should preserve size, got %dx%d", g2.OutH, g2.OutW)
	}
}

func TestConvGeomEmptyOutputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty output geometry")
		}
	}()
	NewConvGeom(1, 2, 2, 1, 5, 5, 1, 0)
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := NewRNG(21)
	cases := []struct {
		n, inC, h, w, outC, k, stride, pad int
	}{
		{1, 1, 5, 5, 1, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 2, 7, 7, 3, 3, 2, 1},
		{2, 4, 6, 6, 2, 1, 1, 0},
		{1, 3, 9, 9, 5, 5, 2, 2},
	}
	for _, c := range cases {
		input := RandNormal(rng, 0, 1, c.n, c.inC, c.h, c.w)
		weight := RandNormal(rng, 0, 1, c.outC, c.inC, c.k, c.k)
		bias := RandNormal(rng, 0, 1, c.outC)
		got := Conv2D(input, weight, bias, c.stride, c.pad)
		want := naiveConv2D(input, weight, bias, c.stride, c.pad)
		if !AllClose(got, want, 1e-9) {
			t.Fatalf("Conv2D mismatch for case %+v: max diff %v", c, MaxAbsDiff(got, want))
		}
	}
}

func TestConv2DNoBias(t *testing.T) {
	rng := NewRNG(22)
	input := RandNormal(rng, 0, 1, 1, 2, 6, 6)
	weight := RandNormal(rng, 0, 1, 3, 2, 3, 3)
	got := Conv2D(input, weight, nil, 1, 1)
	want := naiveConv2D(input, weight, nil, 1, 1)
	if !AllClose(got, want, 1e-9) {
		t.Fatalf("Conv2D (no bias) mismatch: %v", MaxAbsDiff(got, want))
	}
}

// TestConv2DBackwardNumerical verifies all three gradients against central
// finite differences of a scalar loss sum(conv(x, w) * target).
func TestConv2DBackwardNumerical(t *testing.T) {
	rng := NewRNG(23)
	n, inC, h, w := 2, 2, 5, 5
	outC, k, stride, pad := 3, 3, 1, 1
	input := RandNormal(rng, 0, 1, n, inC, h, w)
	weight := RandNormal(rng, 0, 0.5, outC, inC, k, k)
	bias := RandNormal(rng, 0, 0.5, outC)
	// Loss weights so the loss is a non-trivial scalar function.
	out := Conv2D(input, weight, bias, stride, pad)
	lossW := RandNormal(rng, 0, 1, out.Shape()...)
	loss := func() float64 {
		o := Conv2D(input, weight, bias, stride, pad)
		return Dot(o, lossW)
	}
	gradOut := lossW // dLoss/dOut = lossW
	gi, gw, gb := Conv2DBackward(input, weight, true, gradOut, stride, pad)

	const eps = 1e-5
	checkGrad := func(name string, param, analytic *Tensor, count int) {
		for i := 0; i < count; i++ {
			idx := rng.Intn(param.Size())
			orig := param.Data()[idx]
			param.Data()[idx] = orig + eps
			up := loss()
			param.Data()[idx] = orig - eps
			down := loss()
			param.Data()[idx] = orig
			numeric := (up - down) / (2 * eps)
			got := analytic.Data()[idx]
			if math.Abs(numeric-got) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s grad mismatch at %d: numeric %v vs analytic %v", name, idx, numeric, got)
			}
		}
	}
	checkGrad("input", input, gi, 20)
	checkGrad("weight", weight, gw, 20)
	checkGrad("bias", bias, gb, 3)
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the two operators must be adjoint,
	// which is exactly what the conv backward pass relies on.
	rng := NewRNG(29)
	g := NewConvGeom(3, 6, 6, 4, 3, 3, 2, 1)
	x := RandNormal(rng, 0, 1, 3*6*6)
	y := RandNormal(rng, 0, 1, g.ColRows*g.ColsN)
	colX := make([]float64, g.ColRows*g.ColsN)
	g.Im2Col(x.Data(), colX)
	lhs := 0.0
	for i := range colX {
		lhs += colX[i] * y.Data()[i]
	}
	back := make([]float64, 3*6*6)
	g.Col2Im(y.Data(), back)
	rhs := 0.0
	for i := range back {
		rhs += back[i] * x.Data()[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("Im2Col/Col2Im are not adjoint: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool2DKnown(t *testing.T) {
	input := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2D(input, 2, 2)
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("MaxPool2D[%d] = %v, want %v", i, out.Data()[i], v)
		}
	}
	// Gradient routing: each upstream grad lands exactly on the argmax cell.
	gradOut := Ones(1, 1, 2, 2)
	gradIn := MaxPool2DBackward(input.Shape(), arg, gradOut)
	if gradIn.Sum() != 4 {
		t.Fatalf("pool backward should conserve gradient mass, got %v", gradIn.Sum())
	}
	if gradIn.At(0, 0, 1, 1) != 1 || gradIn.At(0, 0, 3, 3) != 1 {
		t.Fatalf("pool backward routed gradient to wrong cells: %v", gradIn)
	}
}

func TestMaxPool2DMultiChannelBatch(t *testing.T) {
	rng := NewRNG(31)
	input := RandNormal(rng, 0, 1, 2, 3, 8, 8)
	out, arg := MaxPool2D(input, 2, 2)
	if out.Dim(2) != 4 || out.Dim(3) != 4 {
		t.Fatalf("pooled shape wrong: %v", out.Shape())
	}
	if len(arg) != out.Size() {
		t.Fatalf("argmax length %d != output size %d", len(arg), out.Size())
	}
	// Every pooled value must be >= the mean of its window (it is the max).
	for i, v := range out.Data() {
		imgIdx := i / (3 * 4 * 4)
		src := input.Data()[imgIdx*3*8*8+arg[i]]
		if v != src {
			t.Fatalf("pooled value %v does not equal argmax source %v", v, src)
		}
	}
}

func TestGlobalAvgPoolForwardBackward(t *testing.T) {
	input := FromSlice([]float64{
		1, 2, 3, 4, // channel 0
		10, 10, 10, 10, // channel 1
	}, 1, 2, 2, 2)
	out := GlobalAvgPool2D(input)
	if out.At(0, 0) != 2.5 || out.At(0, 1) != 10 {
		t.Fatalf("GlobalAvgPool2D wrong: %v", out)
	}
	grad := FromSlice([]float64{4, 8}, 1, 2)
	gin := GlobalAvgPool2DBackward(input.Shape(), grad)
	if gin.At(0, 0, 0, 0) != 1 || gin.At(0, 1, 1, 1) != 2 {
		t.Fatalf("GlobalAvgPool2DBackward wrong: %v", gin)
	}
}

// Property: convolution is linear in the input.
func TestConvLinearityProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := NewRNG(uint64(seed))
		input1 := RandNormal(rng, 0, 1, 1, 2, 5, 5)
		input2 := RandNormal(rng, 0, 1, 1, 2, 5, 5)
		weight := RandNormal(rng, 0, 1, 3, 2, 3, 3)
		a := Conv2D(Add(input1, input2), weight, nil, 1, 1)
		b := Add(Conv2D(input1, weight, nil, 1, 1), Conv2D(input2, weight, nil, 1, 1))
		return AllClose(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: max pooling commutes with adding a constant.
func TestMaxPoolShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint16, shiftRaw int8) bool {
		rng := NewRNG(uint64(seed))
		shift := float64(shiftRaw)
		input := RandNormal(rng, 0, 1, 1, 1, 6, 6)
		shifted := input.Map(func(v float64) float64 { return v + shift })
		a, _ := MaxPool2D(input, 2, 2)
		b, _ := MaxPool2D(shifted, 2, 2)
		return AllClose(b, a.Map(func(v float64) float64 { return v + shift }), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
