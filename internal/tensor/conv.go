package tensor

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/parallel"
)

// ConvGeom describes the geometry of a 2-D convolution or pooling operation on
// NCHW tensors.
type ConvGeom struct {
	InC, InH, InW  int // input channels and spatial size
	KH, KW         int // kernel size
	StrideH        int
	StrideW        int
	PadH, PadW     int
	OutC           int // output channels (ignored by pooling)
	OutH, OutW     int // computed output spatial size
	ColRows, ColsN int // im2col matrix dimensions: (InC*KH*KW) x (OutH*OutW)
}

// NewConvGeom computes output sizes for the given convolution parameters.
// It panics if the configuration produces an empty output.
func NewConvGeom(inC, inH, inW, outC, kH, kW, stride, pad int) ConvGeom {
	g := ConvGeom{
		InC: inC, InH: inH, InW: inW,
		KH: kH, KW: kW,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
		OutC: outC,
	}
	g.OutH = (inH+2*pad-kH)/stride + 1
	g.OutW = (inW+2*pad-kW)/stride + 1
	if g.OutH <= 0 || g.OutW <= 0 {
		panic(fmt.Sprintf("tensor: convolution geometry produces empty output: in %dx%d kernel %dx%d stride %d pad %d",
			inH, inW, kH, kW, stride, pad))
	}
	g.ColRows = inC * kH * kW
	g.ColsN = g.OutH * g.OutW
	return g
}

// OutputShape returns the NCHW output shape for batch size n.
func (g ConvGeom) OutputShape(n int) []int { return []int{n, g.OutC, g.OutH, g.OutW} }

// Im2Col expands a single image (C,H,W view into data) into a column matrix
// of shape (InC*KH*KW, OutH*OutW) stored into col, which must have length
// ColRows*ColsN. Padding positions contribute zeros.
func (g ConvGeom) Im2Col(img []float64, col []float64) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(col) != g.ColRows*g.ColsN {
		panic(fmt.Sprintf("tensor: Im2Col column length %d, want %d", len(col), g.ColRows*g.ColsN))
	}
	idx := 0
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < g.OutW; ow++ {
							col[idx] = 0
							idx++
						}
						continue
					}
					rowOff := chOff + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							col[idx] = 0
						} else {
							col[idx] = img[rowOff+iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im accumulates a column matrix (as produced by Im2Col) back into an
// image gradient buffer of length InC*InH*InW. The buffer is NOT zeroed; the
// caller controls accumulation semantics.
func (g ConvGeom) Col2Im(col []float64, img []float64) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(col) != g.ColRows*g.ColsN {
		panic(fmt.Sprintf("tensor: Col2Im column length %d, want %d", len(col), g.ColRows*g.ColsN))
	}
	idx := 0
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						idx += g.OutW
						continue
					}
					rowOff := chOff + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.InW {
							img[rowOff+iw] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Conv2D performs a batched 2-D convolution of input (N, InC, InH, InW) with
// weights (OutC, InC, KH, KW) and optional bias (OutC). It returns the output
// tensor of shape (N, OutC, OutH, OutW). It is implemented with im2col + GEMM.
func Conv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	n := input.shape[0]
	inC, inH, inW := input.shape[1], input.shape[2], input.shape[3]
	outC, kH, kW := weight.shape[0], weight.shape[2], weight.shape[3]
	g := NewConvGeom(inC, inH, inW, outC, kH, kW, stride, pad)
	return Conv2DInto(New(g.OutputShape(n)...), input, weight, bias, stride, pad)
}

// Conv2DInto is the allocation-free form of Conv2D: the caller provides the
// (N, OutC, OutH, OutW) output tensor, which is overwritten and returned.
// Batches with more than one image are parallelized across the batch with
// one pooled im2col workspace per worker; a single image parallelizes the
// GEMM itself over output-channel panels. Both paths compute every output
// element identically, so results do not depend on the worker count.
func Conv2DInto(out, input, weight, bias *Tensor, stride, pad int) *Tensor {
	if input.Rank() != 4 || weight.Rank() != 4 {
		panic("tensor: Conv2D requires rank-4 input and weight")
	}
	n, inC, inH, inW := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	outC, wInC, kH, kW := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if inC != wInC {
		panic(fmt.Sprintf("%v: Conv2D input channels %d vs weight channels %d", ErrShapeMismatch, inC, wInC))
	}
	g := NewConvGeom(inC, inH, inW, outC, kH, kW, stride, pad)
	if out.Rank() != 4 || out.shape[0] != n || out.shape[1] != outC || out.shape[2] != g.OutH || out.shape[3] != g.OutW {
		panic(fmt.Sprintf("tensor: Conv2DInto output shape %v, want %v", out.shape, g.OutputShape(n)))
	}
	wd := weight.data // (OutC, ColRows) row-major, same layout as the 4-D weight
	var bd []float64
	if bias != nil {
		bd = bias.data
	}
	imgLen := inC * inH * inW
	outLen := outC * g.ColsN
	colLen := g.ColRows * g.ColsN

	if n == 1 {
		colp := getScratch(colLen)
		col := *colp
		g.Im2Col(input.data[:imgLen], col)
		dst := out.data[:outLen]
		parallel.For(outC, gemmRowGrain(g.ColRows, g.ColsN), func(lo, hi int) {
			gemmNN(dst, wd, col, g.ColRows, g.ColsN, lo, hi)
			if bd != nil {
				addBiasRows(dst, bd, g.ColsN, lo, hi)
			}
		})
		putScratch(colp)
		return out
	}
	parallel.ForChunks(n, 1, func(_, lo, hi int) {
		colp := getScratch(colLen)
		col := *colp
		for b := lo; b < hi; b++ {
			img := input.data[b*imgLen : (b+1)*imgLen]
			dst := out.data[b*outLen : (b+1)*outLen]
			g.Im2Col(img, col)
			gemmNN(dst, wd, col, g.ColRows, g.ColsN, 0, outC)
			if bd != nil {
				addBiasRows(dst, bd, g.ColsN, 0, outC)
			}
		}
		putScratch(colp)
	})
	return out
}

// addBiasRows adds bias[c] to rows [lo,hi) of a (rows, cols) matrix.
func addBiasRows(dst, bias []float64, cols, lo, hi int) {
	for c := lo; c < hi; c++ {
		bv := bias[c]
		seg := dst[c*cols : (c+1)*cols]
		for i := range seg {
			seg[i] += bv
		}
	}
}

// Conv2DBackward computes gradients of a Conv2D operation. Given the input,
// weight and upstream gradient gradOut (N, OutC, OutH, OutW), it returns
// (gradInput, gradWeight, gradBias). gradBias is nil if bias was nil.
//
// The batch is processed in parallel with pooled per-worker scratch; the
// weight gradient is accumulated as per-image partials folded in batch
// order, so the result is bit-identical at any worker count. Both GEMMs run
// transpose-free (NT for the weight gradient, TN for the column gradient) —
// no Transpose temporaries are materialized.
func Conv2DBackward(input, weight *Tensor, hasBias bool, gradOut *Tensor, stride, pad int) (gradInput, gradWeight, gradBias *Tensor) {
	n, inC, inH, inW := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	outC, _, kH, kW := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	g := NewConvGeom(inC, inH, inW, outC, kH, kW, stride, pad)

	gradInput = New(input.shape...)
	gradWeight = New(weight.shape...)
	if hasBias {
		gradBias = New(outC)
	}
	wd := weight.data
	gwd := gradWeight.data
	imgLen := inC * inH * inW
	outLen := outC * g.ColsN
	colLen := g.ColRows * g.ColsN
	wLen := outC * g.ColRows

	if n == 1 {
		colp := getScratch(colLen)
		dcolp := getScratch(colLen)
		col, dcol := *colp, *dcolp
		gOut := gradOut.data[:outLen]
		g.Im2Col(input.data[:imgLen], col)
		// dW = gOut (outC, ColsN) x colᵀ; gradWeight starts zeroed.
		parallel.For(outC, gemmRowGrain(g.ColsN, g.ColRows), func(lo, hi int) {
			gemmNTAcc(gwd, gOut, col, g.ColsN, g.ColRows, lo, hi)
		})
		// dcol = wᵀ (ColRows, outC) x gOut, then scatter back to the image.
		parallel.For(g.ColRows, gemmRowGrain(outC, g.ColsN), func(lo, hi int) {
			gemmTN(dcol, wd, gOut, outC, g.ColRows, g.ColsN, lo, hi)
		})
		g.Col2Im(dcol, gradInput.data[:imgLen])
		putScratch(colp)
		putScratch(dcolp)
	} else {
		// One chunk per image: chunk boundaries (and therefore the partial
		// weight-gradient association order) never depend on worker count.
		partials := make([]*[]float64, parallel.Chunks(n, 1))
		parallel.ForChunks(n, 1, func(chunk, lo, hi int) {
			colp := getScratch(colLen)
			dcolp := getScratch(colLen)
			dwp := getScratch(wLen)
			col, dcol, dw := *colp, *dcolp, *dwp
			zeroFloats(dw)
			for b := lo; b < hi; b++ {
				img := input.data[b*imgLen : (b+1)*imgLen]
				gOut := gradOut.data[b*outLen : (b+1)*outLen]
				g.Im2Col(img, col)
				gemmNTAcc(dw, gOut, col, g.ColsN, g.ColRows, 0, outC)
				gemmTN(dcol, wd, gOut, outC, g.ColRows, g.ColsN, 0, g.ColRows)
				g.Col2Im(dcol, gradInput.data[b*imgLen:(b+1)*imgLen])
			}
			partials[chunk] = dwp
			putScratch(colp)
			putScratch(dcolp)
		})
		for _, p := range partials {
			axpy(gwd, (*p)[:wLen], 1)
			putScratch(p)
		}
	}

	if hasBias {
		gbd := gradBias.data
		for b := 0; b < n; b++ {
			gOut := gradOut.data[b*outLen : (b+1)*outLen]
			for c := 0; c < outC; c++ {
				s := 0.0
				for _, v := range gOut[c*g.ColsN : (c+1)*g.ColsN] {
					s += v
				}
				gbd[c] += s
			}
		}
	}
	return gradInput, gradWeight, gradBias
}

// MaxPool2D performs 2-D max pooling on an NCHW tensor and returns the pooled
// output along with the flat argmax index (into each image) used for backward.
func MaxPool2D(input *Tensor, k, stride int) (*Tensor, []int) {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	outH := (h-k)/stride + 1
	outW := (w-k)/stride + 1
	out := New(n, c, outH, outW)
	arg := make([]int, n*c*outH*outW)
	imgLen := c * h * w
	// Each (image, channel) plane is independent; parallelize over the
	// flattened plane index with a grain that keeps chunks coarse.
	parallel.For(n*c, poolGrain(outH*outW*k*k), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			b, ch := p/c, p%c
			img := input.data[b*imgLen : (b+1)*imgLen]
			chOff := ch * h * w
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := -1
					bestV := 0.0
					for kh := 0; kh < k; kh++ {
						for kw := 0; kw < k; kw++ {
							ih := oh*stride + kh
							iw := ow*stride + kw
							idx := chOff + ih*w + iw
							if best == -1 || img[idx] > bestV {
								best, bestV = idx, img[idx]
							}
						}
					}
					oidx := (p*outH+oh)*outW + ow
					out.data[oidx] = bestV
					arg[oidx] = best
				}
			}
		}
	})
	return out, arg
}

// poolGrain converts a per-plane work estimate into a planes-per-chunk grain
// targeting a few thousand operations per parallel chunk.
func poolGrain(perPlane int) int {
	if perPlane <= 0 {
		return 1
	}
	g := 4096 / perPlane
	if g < 1 {
		g = 1
	}
	return g
}

// MaxPool2DBackward scatters the upstream gradient back through a max-pool
// using the argmax indices produced by MaxPool2D.
func MaxPool2DBackward(inputShape []int, arg []int, gradOut *Tensor) *Tensor {
	gradIn := New(inputShape...)
	n := inputShape[0]
	imgLen := inputShape[1] * inputShape[2] * inputShape[3]
	perImage := len(arg) / n
	// The scatter targets lie within each image, so images are independent.
	parallel.For(n, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			base := b * imgLen
			for i := 0; i < perImage; i++ {
				oidx := b*perImage + i
				gradIn.data[base+arg[oidx]] += gradOut.data[oidx]
			}
		}
	})
	return gradIn
}

// GlobalAvgPool2D averages each channel's spatial map, producing (N, C).
func GlobalAvgPool2D(input *Tensor) *Tensor {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	out := New(n, c)
	area := float64(h * w)
	parallel.For(n*c, poolGrain(h*w), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			off := p * h * w
			s := 0.0
			for _, v := range input.data[off : off+h*w] {
				s += v
			}
			out.data[p] = s / area
		}
	})
	return out
}

// GlobalAvgPool2DBackward broadcasts the (N, C) gradient evenly over each
// channel's spatial map of the original (N, C, H, W) input shape.
func GlobalAvgPool2DBackward(inputShape []int, gradOut *Tensor) *Tensor {
	n, c, h, w := inputShape[0], inputShape[1], inputShape[2], inputShape[3]
	gradIn := New(inputShape...)
	area := float64(h * w)
	parallel.For(n*c, poolGrain(h*w), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			g := gradOut.data[p] / area
			seg := gradIn.data[p*h*w : (p+1)*h*w]
			for i := range seg {
				seg[i] = g
			}
		}
	})
	return gradIn
}
