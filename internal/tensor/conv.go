package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling operation on
// NCHW tensors.
type ConvGeom struct {
	InC, InH, InW  int // input channels and spatial size
	KH, KW         int // kernel size
	StrideH        int
	StrideW        int
	PadH, PadW     int
	OutC           int // output channels (ignored by pooling)
	OutH, OutW     int // computed output spatial size
	ColRows, ColsN int // im2col matrix dimensions: (InC*KH*KW) x (OutH*OutW)
}

// NewConvGeom computes output sizes for the given convolution parameters.
// It panics if the configuration produces an empty output.
func NewConvGeom(inC, inH, inW, outC, kH, kW, stride, pad int) ConvGeom {
	g := ConvGeom{
		InC: inC, InH: inH, InW: inW,
		KH: kH, KW: kW,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
		OutC: outC,
	}
	g.OutH = (inH+2*pad-kH)/stride + 1
	g.OutW = (inW+2*pad-kW)/stride + 1
	if g.OutH <= 0 || g.OutW <= 0 {
		panic(fmt.Sprintf("tensor: convolution geometry produces empty output: in %dx%d kernel %dx%d stride %d pad %d",
			inH, inW, kH, kW, stride, pad))
	}
	g.ColRows = inC * kH * kW
	g.ColsN = g.OutH * g.OutW
	return g
}

// OutputShape returns the NCHW output shape for batch size n.
func (g ConvGeom) OutputShape(n int) []int { return []int{n, g.OutC, g.OutH, g.OutW} }

// Im2Col expands a single image (C,H,W view into data) into a column matrix
// of shape (InC*KH*KW, OutH*OutW) stored into col, which must have length
// ColRows*ColsN. Padding positions contribute zeros.
func (g ConvGeom) Im2Col(img []float64, col []float64) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(col) != g.ColRows*g.ColsN {
		panic(fmt.Sprintf("tensor: Im2Col column length %d, want %d", len(col), g.ColRows*g.ColsN))
	}
	idx := 0
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < g.OutW; ow++ {
							col[idx] = 0
							idx++
						}
						continue
					}
					rowOff := chOff + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							col[idx] = 0
						} else {
							col[idx] = img[rowOff+iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im accumulates a column matrix (as produced by Im2Col) back into an
// image gradient buffer of length InC*InH*InW. The buffer is NOT zeroed; the
// caller controls accumulation semantics.
func (g ConvGeom) Col2Im(col []float64, img []float64) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(col) != g.ColRows*g.ColsN {
		panic(fmt.Sprintf("tensor: Col2Im column length %d, want %d", len(col), g.ColRows*g.ColsN))
	}
	idx := 0
	for c := 0; c < g.InC; c++ {
		chOff := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				for oh := 0; oh < g.OutH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						idx += g.OutW
						continue
					}
					rowOff := chOff + ih*g.InW
					for ow := 0; ow < g.OutW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.InW {
							img[rowOff+iw] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}

// Conv2D performs a batched 2-D convolution of input (N, InC, InH, InW) with
// weights (OutC, InC, KH, KW) and optional bias (OutC). It returns the output
// tensor of shape (N, OutC, OutH, OutW). It is implemented with im2col + GEMM.
func Conv2D(input, weight, bias *Tensor, stride, pad int) *Tensor {
	if input.Rank() != 4 || weight.Rank() != 4 {
		panic("tensor: Conv2D requires rank-4 input and weight")
	}
	n, inC, inH, inW := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	outC, wInC, kH, kW := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	if inC != wInC {
		panic(fmt.Sprintf("%v: Conv2D input channels %d vs weight channels %d", ErrShapeMismatch, inC, wInC))
	}
	g := NewConvGeom(inC, inH, inW, outC, kH, kW, stride, pad)
	out := New(g.OutputShape(n)...)
	col := make([]float64, g.ColRows*g.ColsN)
	wMat := weight.Reshape(outC, g.ColRows)
	imgLen := inC * inH * inW
	outLen := outC * g.OutH * g.OutW
	for b := 0; b < n; b++ {
		img := input.data[b*imgLen : (b+1)*imgLen]
		g.Im2Col(img, col)
		colT := FromSlice(col, g.ColRows, g.ColsN)
		res := MatMul(wMat, colT) // (outC, OutH*OutW)
		dst := out.data[b*outLen : (b+1)*outLen]
		copy(dst, res.data)
		if bias != nil {
			for c := 0; c < outC; c++ {
				bv := bias.data[c]
				seg := dst[c*g.ColsN : (c+1)*g.ColsN]
				for i := range seg {
					seg[i] += bv
				}
			}
		}
	}
	return out
}

// Conv2DBackward computes gradients of a Conv2D operation. Given the input,
// weight and upstream gradient gradOut (N, OutC, OutH, OutW), it returns
// (gradInput, gradWeight, gradBias). gradBias is nil if bias was nil.
func Conv2DBackward(input, weight *Tensor, hasBias bool, gradOut *Tensor, stride, pad int) (gradInput, gradWeight, gradBias *Tensor) {
	n, inC, inH, inW := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	outC, _, kH, kW := weight.shape[0], weight.shape[1], weight.shape[2], weight.shape[3]
	g := NewConvGeom(inC, inH, inW, outC, kH, kW, stride, pad)

	gradInput = New(input.shape...)
	gradWeight = New(weight.shape...)
	if hasBias {
		gradBias = New(outC)
	}

	wMat := weight.Reshape(outC, g.ColRows)
	wMatT := Transpose(wMat) // (ColRows, outC)
	col := make([]float64, g.ColRows*g.ColsN)
	imgLen := inC * inH * inW
	outLen := outC * g.OutH * g.OutW
	gwMat := gradWeight.Reshape(outC, g.ColRows)

	for b := 0; b < n; b++ {
		img := input.data[b*imgLen : (b+1)*imgLen]
		gOut := gradOut.data[b*outLen : (b+1)*outLen]
		gOutMat := FromSlice(gOut, outC, g.ColsN)

		// Weight gradient: dW += gOut (outC, cols) x col^T (cols, ColRows)
		g.Im2Col(img, col)
		colT := FromSlice(col, g.ColRows, g.ColsN)
		dW := MatMul(gOutMat, Transpose(colT))
		gwMat.AddInPlace(dW)

		// Bias gradient: sum over spatial positions.
		if hasBias {
			for c := 0; c < outC; c++ {
				s := 0.0
				seg := gOut[c*g.ColsN : (c+1)*g.ColsN]
				for _, v := range seg {
					s += v
				}
				gradBias.data[c] += s
			}
		}

		// Input gradient: col grad = W^T x gOut, then col2im.
		dCol := MatMul(wMatT, gOutMat) // (ColRows, ColsN)
		gImg := gradInput.data[b*imgLen : (b+1)*imgLen]
		g.Col2Im(dCol.data, gImg)
	}
	return gradInput, gradWeight, gradBias
}

// MaxPool2D performs 2-D max pooling on an NCHW tensor and returns the pooled
// output along with the flat argmax index (into each image) used for backward.
func MaxPool2D(input *Tensor, k, stride int) (*Tensor, []int) {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	outH := (h-k)/stride + 1
	outW := (w-k)/stride + 1
	out := New(n, c, outH, outW)
	arg := make([]int, n*c*outH*outW)
	imgLen := c * h * w
	for b := 0; b < n; b++ {
		img := input.data[b*imgLen : (b+1)*imgLen]
		for ch := 0; ch < c; ch++ {
			chOff := ch * h * w
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					best := -1
					bestV := 0.0
					for kh := 0; kh < k; kh++ {
						for kw := 0; kw < k; kw++ {
							ih := oh*stride + kh
							iw := ow*stride + kw
							idx := chOff + ih*w + iw
							if best == -1 || img[idx] > bestV {
								best, bestV = idx, img[idx]
							}
						}
					}
					oidx := ((b*c+ch)*outH+oh)*outW + ow
					out.data[oidx] = bestV
					arg[oidx] = best
				}
			}
		}
	}
	return out, arg
}

// MaxPool2DBackward scatters the upstream gradient back through a max-pool
// using the argmax indices produced by MaxPool2D.
func MaxPool2DBackward(inputShape []int, arg []int, gradOut *Tensor) *Tensor {
	gradIn := New(inputShape...)
	n := inputShape[0]
	imgLen := inputShape[1] * inputShape[2] * inputShape[3]
	perImage := len(arg) / n
	for b := 0; b < n; b++ {
		base := b * imgLen
		for i := 0; i < perImage; i++ {
			oidx := b*perImage + i
			gradIn.data[base+arg[oidx]] += gradOut.data[oidx]
		}
	}
	return gradIn
}

// GlobalAvgPool2D averages each channel's spatial map, producing (N, C).
func GlobalAvgPool2D(input *Tensor) *Tensor {
	n, c, h, w := input.shape[0], input.shape[1], input.shape[2], input.shape[3]
	out := New(n, c)
	area := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			off := ((b * c) + ch) * h * w
			s := 0.0
			for i := 0; i < h*w; i++ {
				s += input.data[off+i]
			}
			out.data[b*c+ch] = s / area
		}
	}
	return out
}

// GlobalAvgPool2DBackward broadcasts the (N, C) gradient evenly over each
// channel's spatial map of the original (N, C, H, W) input shape.
func GlobalAvgPool2DBackward(inputShape []int, gradOut *Tensor) *Tensor {
	n, c, h, w := inputShape[0], inputShape[1], inputShape[2], inputShape[3]
	gradIn := New(inputShape...)
	area := float64(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			g := gradOut.data[b*c+ch] / area
			off := ((b * c) + ch) * h * w
			for i := 0; i < h*w; i++ {
				gradIn.data[off+i] = g
			}
		}
	}
	return gradIn
}
