package tensor

import "sync"

// scratchPool is the shared arena for kernel workspaces (im2col columns,
// per-chunk weight-gradient partials, GEMM intermediates). Buffers are
// handed out per parallel chunk and returned immediately after, so at
// steady state the hot training loop performs no heap allocation for
// scratch: the pool converges on one buffer per concurrent worker of each
// size class actually in use.
var scratchPool = sync.Pool{New: func() any { s := make([]float64, 0); return &s }}

// getScratch returns a float64 slice of length n whose contents are
// undefined. Callers that need zeros must clear it (or fully overwrite it,
// as Im2Col does). Return the pointer with putScratch when done.
func getScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		s := make([]float64, n)
		*p = s
	}
	*p = (*p)[:n]
	return p
}

// putScratch returns a buffer obtained from getScratch to the pool.
func putScratch(p *[]float64) { scratchPool.Put(p) }

// byteScratchPool is the byte-slice counterpart of scratchPool, used by the
// serialization paths (checkpoint spilling to flash) to stage encoded tensor
// data without allocating per spill.
var byteScratchPool = sync.Pool{New: func() any { s := make([]byte, 0); return &s }}

// GetByteScratch returns a byte slice of length n whose contents are
// undefined; callers must fully overwrite it. Return the pointer with
// PutByteScratch when done.
func GetByteScratch(n int) *[]byte {
	p := byteScratchPool.Get().(*[]byte)
	if cap(*p) < n {
		s := make([]byte, n)
		*p = s
	}
	*p = (*p)[:n]
	return p
}

// PutByteScratch returns a buffer obtained from GetByteScratch to the pool.
func PutByteScratch(p *[]byte) { byteScratchPool.Put(p) }

// zeroFloats clears a slice; the compiler lowers this loop to memclr.
func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
