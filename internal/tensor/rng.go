package tensor

import "math"

// RNG is a small, deterministic pseudo-random number generator (SplitMix64 +
// xoshiro256** style mixing) used for reproducible weight initialisation and
// synthetic data generation. A dedicated generator avoids the global state of
// math/rand and keeps every experiment seedable and repeatable.
type RNG struct {
	state [4]uint64
	// cached spare normal deviate for the Box-Muller transform
	hasSpare bool
	spare    float64
}

// NewRNG creates a generator seeded from a single 64-bit seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.state {
		r.state[i] = next()
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.state[0]|r.state[1]|r.state[2]|r.state[3] == 0 {
		r.state[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.state[1]*5, 7) * 9
	t := r.state[1] << 17
	r.state[2] ^= r.state[0]
	r.state[3] ^= r.state[1]
	r.state[1] ^= r.state[2]
	r.state[0] ^= r.state[3]
	r.state[2] ^= t
	r.state[3] = rotl(r.state[3], 45)
	return result
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform deviate in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed deviate with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, std float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + std*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return mean + std*u*f
}

// StateWords is the number of 64-bit words State returns and SetState
// expects: the four xoshiro words, the spare-deviate flag and the spare
// deviate's bits.
const StateWords = 6

// State serializes the generator into raw 64-bit words, so a checkpoint can
// capture the RNG mid-stream and SetState can continue the exact sequence.
func (r *RNG) State() [StateWords]uint64 {
	var s [StateWords]uint64
	copy(s[:4], r.state[:])
	if r.hasSpare {
		s[4] = 1
	}
	s[5] = math.Float64bits(r.spare)
	return s
}

// SetState restores a generator to a state captured by State. The restored
// generator produces exactly the deviate sequence the captured one would
// have produced.
func (r *RNG) SetState(s [StateWords]uint64) {
	copy(r.state[:], s[:4])
	r.hasSpare = s[4] != 0
	r.spare = math.Float64frombits(s[5])
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// RandUniform creates a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(r *RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Range(lo, hi)
	}
	return t
}

// RandNormal creates a tensor with normally distributed elements.
func RandNormal(r *RNG, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Normal(mean, std)
	}
	return t
}

// KaimingConv initialises a convolution weight tensor (outC, inC, kH, kW)
// with Kaiming/He normal initialisation appropriate for ReLU networks.
func KaimingConv(r *RNG, outC, inC, kH, kW int) *Tensor {
	fanIn := inC * kH * kW
	std := math.Sqrt(2.0 / float64(fanIn))
	return RandNormal(r, 0, std, outC, inC, kH, kW)
}

// KaimingLinear initialises a linear weight tensor (out, in) with Kaiming
// normal initialisation.
func KaimingLinear(r *RNG, out, in int) *Tensor {
	std := math.Sqrt(2.0 / float64(in))
	return RandNormal(r, 0, std, out, in)
}
