package tensor

import (
	"fmt"

	"github.com/edgeml/edgetrain/internal/parallel"
)

// Blocked GEMM kernels. All three storage orders the training loops need are
// provided natively — NN (a·b), TN (aᵀ·b) and NT (a·bᵀ) — so callers never
// materialize a Transpose temporary. Each kernel is parallelized over
// contiguous row panels of the output; a given output element is produced by
// exactly one chunk and its k-accumulation runs in ascending order, so
// results are bit-identical to the naive triple loop at every worker count.
const (
	// gemmKC is the k-extent of a panel: a gemmKC-row slab of B is streamed
	// repeatedly against each output row while it is still cache-resident.
	gemmKC = 256
	// gemmNC is the j-extent of a panel: output rows are updated in
	// gemmNC-wide strips so the strip stays in L1 across the k-panel.
	gemmNC = 1024
	// gemmChunkFlops is the target number of multiply-adds per parallel
	// chunk; the row grain is derived from it so small problems stay serial
	// and large ones cut enough chunks to balance load.
	gemmChunkFlops = 1 << 17
)

// gemmRowGrain returns the rows-per-chunk grain for an (m,k)x(k,n) product.
// It is a pure function of the shape, which keeps chunk boundaries (and
// therefore reductions layered on top) independent of the worker count.
func gemmRowGrain(k, n int) int {
	work := k * n
	if work <= 0 {
		return 1
	}
	g := gemmChunkFlops / work
	if g < 1 {
		g = 1
	}
	return g
}

func matmulCheckRank2(a, b *Tensor, op string) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 tensors, got ranks %d and %d", op, a.Rank(), b.Rank()))
	}
}

func matmulCheckDst(dst *Tensor, m, n int, op string) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.shape, m, n))
	}
}

// MatMul multiplies two rank-2 tensors: (m,k) x (k,n) -> (m,n).
func MatMul(a, b *Tensor) *Tensor {
	matmulCheckRank2(a, b, "MatMul")
	return MatMulInto(New(a.shape[0], b.shape[1]), a, b)
}

// MatMulInto computes dst = a x b for rank-2 tensors a (m,k) and b (k,n)
// into the caller-provided dst (m,n), overwriting it, and returns dst.
// dst must not alias a or b. It allocates nothing.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	matmulCheckRank2(a, b, "MatMulInto")
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("%v: MatMul inner dimensions %d vs %d", ErrShapeMismatch, k, k2))
	}
	matmulCheckDst(dst, m, n, "MatMulInto")
	parallel.For(m, gemmRowGrain(k, n), func(lo, hi int) {
		gemmNN(dst.data, a.data, b.data, k, n, lo, hi)
	})
	return dst
}

// MatMulTN computes aᵀ x b for a (k,m) and b (k,n), returning a new (m,n)
// tensor. It is the transpose-free replacement for MatMul(Transpose(a), b).
func MatMulTN(a, b *Tensor) *Tensor {
	matmulCheckRank2(a, b, "MatMulTN")
	return MatMulTNInto(New(a.shape[1], b.shape[1]), a, b)
}

// MatMulTNInto computes dst = aᵀ x b into the caller-provided dst (m,n),
// overwriting it. dst must not alias a or b. It allocates nothing.
func MatMulTNInto(dst, a, b *Tensor) *Tensor {
	matmulCheckRank2(a, b, "MatMulTNInto")
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("%v: MatMulTN inner dimensions %d vs %d", ErrShapeMismatch, k, k2))
	}
	matmulCheckDst(dst, m, n, "MatMulTNInto")
	parallel.For(m, gemmRowGrain(k, n), func(lo, hi int) {
		gemmTN(dst.data, a.data, b.data, k, m, n, lo, hi)
	})
	return dst
}

// MatMulNT computes a x bᵀ for a (m,k) and b (n,k), returning a new (m,n)
// tensor. It is the transpose-free replacement for MatMul(a, Transpose(b)).
func MatMulNT(a, b *Tensor) *Tensor {
	matmulCheckRank2(a, b, "MatMulNT")
	return MatMulNTInto(New(a.shape[0], b.shape[0]), a, b)
}

// MatMulNTInto computes dst = a x bᵀ into the caller-provided dst (m,n),
// overwriting it. dst must not alias a or b. It allocates nothing.
func MatMulNTInto(dst, a, b *Tensor) *Tensor {
	matmulCheckRank2(a, b, "MatMulNTInto")
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("%v: MatMulNT inner dimensions %d vs %d", ErrShapeMismatch, k, k2))
	}
	matmulCheckDst(dst, m, n, "MatMulNTInto")
	parallel.For(m, gemmRowGrain(k, n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zeroFloats(dst.data[i*n : (i+1)*n])
		}
		gemmNTAcc(dst.data, a.data, b.data, k, n, lo, hi)
	})
	return dst
}

// gemmNN computes rows [lo,hi) of dst = a x b with k/j cache blocking.
// The accumulation order over k is ascending for every output element,
// matching the naive triple loop bit for bit.
func gemmNN(dst, a, b []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		zeroFloats(dst[i*n : (i+1)*n])
	}
	for jc := 0; jc < n; jc += gemmNC {
		je := min(jc+gemmNC, n)
		for pc := 0; pc < k; pc += gemmKC {
			pe := min(pc+gemmKC, k)
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				orow := dst[i*n+jc : i*n+je]
				for p := pc; p < pe; p++ {
					axpy(orow, b[p*n+jc:p*n+je], arow[p])
				}
			}
		}
	}
}

// gemmTN computes rows [lo,hi) of dst = aᵀ x b, a stored (k,m).
func gemmTN(dst, a, b []float64, k, m, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		zeroFloats(dst[i*n : (i+1)*n])
	}
	for jc := 0; jc < n; jc += gemmNC {
		je := min(jc+gemmNC, n)
		for pc := 0; pc < k; pc += gemmKC {
			pe := min(pc+gemmKC, k)
			for i := lo; i < hi; i++ {
				orow := dst[i*n+jc : i*n+je]
				for p := pc; p < pe; p++ {
					axpy(orow, b[p*n+jc:p*n+je], a[p*m+i])
				}
			}
		}
	}
}

// gemmNTAcc accumulates rows [lo,hi) of dst += a x bᵀ, b stored (n,k).
// Each output element is a single dot product accumulated in ascending k
// order, so the result is bit-identical to the naive loop.
func gemmNTAcc(dst, a, b []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] += dot(arow, b[j*k:(j+1)*k])
		}
	}
}

// axpy computes dst[i] += alpha*src[i]; the slices must have equal length.
// Unrolled by four with sequential adds, so the float rounding matches the
// plain loop exactly.
func axpy(dst, src []float64, alpha float64) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+3 < n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// dot returns the inner product of two equal-length slices, accumulated
// strictly in ascending index order (single accumulator, sequential adds).
func dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	s := 0.0
	i := 0
	for ; i+3 < n; i += 4 {
		s += a[i] * b[i]
		s += a[i+1] * b[i+1]
		s += a[i+2] * b[i+2]
		s += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
