package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 {
		t.Fatalf("Size = %d, want 24", a.Size())
	}
	for i, v := range a.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if a.Rank() != 3 || a.Dim(1) != 3 {
		t.Fatalf("rank/dim wrong: rank=%d dim1=%d", a.Rank(), a.Dim(1))
	}
}

func TestFromSliceAndAt(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(0, 0) != 1 || a.At(1, 2) != 6 || a.At(0, 2) != 3 {
		t.Fatalf("At returned wrong values: %v", a)
	}
	a.Set(42, 1, 1)
	if a.At(1, 1) != 42 {
		t.Fatalf("Set did not stick")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshape(t *testing.T) {
	a := Arange(12)
	b := a.Reshape(3, 4)
	if b.At(2, 3) != 11 {
		t.Fatalf("Reshape mislaid data: %v", b)
	}
	c := b.Reshape(2, -1)
	if c.Dim(1) != 6 {
		t.Fatalf("inferred dim = %d, want 6", c.Dim(1))
	}
	// Reshape shares data.
	c.Set(99, 0, 0)
	if a.At(0) != 99 {
		t.Fatalf("Reshape should alias backing data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	Arange(10).Reshape(3, 4)
}

func TestCloneIndependence(t *testing.T) {
	a := Arange(5)
	b := a.Clone()
	b.Set(100, 0)
	if a.At(0) == 100 {
		t.Fatal("Clone must not alias data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 10 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Scale(2, a).Data(); got[2] != 6 {
		t.Fatalf("Scale wrong: %v", got)
	}
	a.AxpyInPlace(10, b)
	if a.At(0) != 41 {
		t.Fatalf("Axpy wrong: %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Add(New(2), New(3))
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -1, 4, 1, -5, 9}, 6)
	if a.Sum() != 11 {
		t.Fatalf("Sum = %v, want 11", a.Sum())
	}
	if math.Abs(a.Mean()-11.0/6.0) > 1e-12 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if v, i := a.Max(); v != 9 || i != 5 {
		t.Fatalf("Max = %v@%d", v, i)
	}
	if v, i := a.Min(); v != -5 || i != 4 {
		t.Fatalf("Min = %v@%d", v, i)
	}
	if d := Dot(a, a) - a.Norm()*a.Norm(); math.Abs(d) > 1e-9 {
		t.Fatalf("Dot/Norm inconsistent by %v", d)
	}
}

func TestMeanEmpty(t *testing.T) {
	if New(0).Mean() != 0 {
		t.Fatal("Mean of empty tensor should be 0")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], v)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 5, 5)
	c := MatMul(a, Eye(5))
	if !AllClose(a, c, 1e-12) {
		t.Fatal("A * I != A")
	}
	c2 := MatMul(Eye(5), a)
	if !AllClose(a, c2, 1e-12) {
		t.Fatal("I * A != A")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("Transpose shape wrong: %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose values wrong: %v", at)
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float64{0.1, 0.9, 0.0, 0.5, 0.2, 0.3}, 2, 3)
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestApplyAndMap(t *testing.T) {
	a := Arange(4)
	b := a.Map(func(v float64) float64 { return v * v })
	if b.At(3) != 9 || a.At(3) != 3 {
		t.Fatalf("Map must not modify source: a=%v b=%v", a, b)
	}
	a.Apply(func(v float64) float64 { return -v })
	if a.At(2) != -2 {
		t.Fatalf("Apply in place failed: %v", a)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := Arange(3)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small tensor")
	}
	large := New(100)
	if s := large.String(); len(s) == 0 || len(s) > 200 {
		t.Fatalf("large tensor String should be a summary, got %q", s)
	}
}

func TestEyeAndOnesAndFull(t *testing.T) {
	e := Eye(3)
	if e.At(1, 1) != 1 || e.At(0, 1) != 0 {
		t.Fatal("Eye wrong")
	}
	o := Ones(2, 2)
	if o.Sum() != 4 {
		t.Fatal("Ones wrong")
	}
	f := Full(2.5, 4)
	if f.Sum() != 10 {
		t.Fatal("Full wrong")
	}
}

func TestBytes(t *testing.T) {
	if New(10, 10).Bytes() != 800 {
		t.Fatalf("Bytes = %d, want 800", New(10, 10).Bytes())
	}
}

// Property: matrix multiplication is associative (within float tolerance).
func TestMatMulAssociativeProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func(seed uint8) bool {
		r := NewRNG(uint64(seed) + rng.Uint64()%1000)
		m, k, n, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := RandUniform(r, -1, 1, m, k)
		b := RandUniform(r, -1, 1, k, n)
		c := RandUniform(r, -1, 1, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return AllClose(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint8) bool {
		r := NewRNG(uint64(seed))
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		a := RandNormal(r, 0, 1, m, n)
		return AllClose(a, Transpose(Transpose(a)), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(Add(a,b), b) == a.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := NewRNG(uint64(seed))
		n := 1 + r.Intn(32)
		a := RandNormal(r, 0, 3, n)
		b := RandNormal(r, 0, 3, n)
		if !AllClose(Add(a, b), Add(b, a), 0) {
			return false
		}
		return AllClose(Sub(Add(a, b), b), a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{1, 4, 2.5}, 3)
	if d := MaxAbsDiff(a, b); d != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
}

func TestAllCloseDifferentShapes(t *testing.T) {
	if AllClose(New(2), New(3), 1) {
		t.Fatal("AllClose must be false for different shapes")
	}
}
