package tensor

import "testing"

// Kernel microbenchmarks for the compute engine. Run with -benchmem: the
// Into variants must report ~0 allocs/op at steady state, and BENCH_baseline.json
// at the repo root tracks the numbers across PRs.

func BenchmarkMatMul(b *testing.B) {
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 128, 128)
	c := RandNormal(rng, 0, 1, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkMatMulInto(b *testing.B) {
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 128, 128)
	c := RandNormal(rng, 0, 1, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, c)
	}
}

func BenchmarkMatMulNaive(b *testing.B) {
	// The pre-engine baseline: single-threaded ijk loop with the old
	// data-dependent zero skip, kept here so the blocked kernel's win stays
	// measurable release over release.
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 128, 128)
	c := RandNormal(rng, 0, 1, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		m, k, n := 128, 128, 128
		out := New(m, n)
		for i := 0; i < m; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := c.data[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	}
}

func BenchmarkMatMulTN(b *testing.B) {
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 128, 128)
	c := RandNormal(rng, 0, 1, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTNInto(dst, a, c)
	}
}

func BenchmarkMatMulNT(b *testing.B) {
	rng := NewRNG(1)
	a := RandNormal(rng, 0, 1, 128, 128)
	c := RandNormal(rng, 0, 1, 128, 128)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulNTInto(dst, a, c)
	}
}

func benchConvSetup(batch int) (input, weight, bias *Tensor) {
	rng := NewRNG(2)
	input = RandNormal(rng, 0, 1, batch, 8, 32, 32)
	weight = RandNormal(rng, 0, 0.5, 16, 8, 3, 3)
	bias = RandNormal(rng, 0, 0.5, 16)
	return
}

func BenchmarkConv2DForward(b *testing.B) {
	input, weight, bias := benchConvSetup(4)
	out := New(4, 16, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DInto(out, input, weight, bias, 1, 1)
	}
}

func BenchmarkConv2DForwardBatch1(b *testing.B) {
	input, weight, bias := benchConvSetup(1)
	out := New(1, 16, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DInto(out, input, weight, bias, 1, 1)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	input, weight, _ := benchConvSetup(4)
	gradOut := Conv2D(input, weight, nil, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DBackward(input, weight, false, gradOut, 1, 1)
	}
}

func BenchmarkMaxPool2D(b *testing.B) {
	input, _, _ := benchConvSetup(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxPool2D(input, 2, 2)
	}
}
