package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 50", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) did not hit all values after 1000 draws: %v", seen)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.08 {
		t.Fatalf("sample mean %v too far from 2", mean)
	}
	if math.Abs(variance-9) > 0.5 {
		t.Fatalf("sample variance %v too far from 9", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRNG(9)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum2 := 0
	for _, v := range vals {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("Shuffle changed the multiset: %v", vals)
	}
}

func TestRandUniformBounds(t *testing.T) {
	r := NewRNG(13)
	a := RandUniform(r, -2, 5, 1000)
	lo, _ := a.Min()
	hi, _ := a.Max()
	if lo < -2 || hi >= 5 {
		t.Fatalf("RandUniform out of bounds: [%v, %v]", lo, hi)
	}
}

func TestKaimingConvScale(t *testing.T) {
	r := NewRNG(17)
	w := KaimingConv(r, 64, 32, 3, 3)
	if w.Dim(0) != 64 || w.Dim(3) != 3 {
		t.Fatalf("KaimingConv shape wrong: %v", w.Shape())
	}
	// Empirical std should be close to sqrt(2/fanIn) = sqrt(2/288).
	want := math.Sqrt(2.0 / 288.0)
	var sumSq float64
	for _, v := range w.Data() {
		sumSq += v * v
	}
	std := math.Sqrt(sumSq / float64(w.Size()))
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("Kaiming std %v, want about %v", std, want)
	}
}

func TestKaimingLinearShape(t *testing.T) {
	r := NewRNG(19)
	w := KaimingLinear(r, 10, 20)
	if w.Dim(0) != 10 || w.Dim(1) != 20 {
		t.Fatalf("KaimingLinear shape wrong: %v", w.Shape())
	}
}

// Property: Perm always returns a permutation, for any seed and size.
func TestPermProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(uint64(seed)).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Range(lo, hi) stays within [lo, hi) for lo < hi.
func TestRangeProperty(t *testing.T) {
	f := func(seed uint16, a, b int8) bool {
		lo, hi := float64(a), float64(b)
		if lo == hi {
			hi = lo + 1
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		r := NewRNG(uint64(seed))
		for i := 0; i < 20; i++ {
			v := r.Range(lo, hi)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
