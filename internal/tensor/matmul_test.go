package tensor

import (
	"testing"

	"github.com/edgeml/edgetrain/internal/parallel"
)

// naiveMatMul is the reference triple loop the blocked kernels are pinned
// against: ascending-k accumulation, no zero skipping, no blocking.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func randMat(rng *RNG, m, n int) *Tensor {
	t := New(m, n)
	for i := range t.data {
		t.data[i] = rng.Normal(0, 1)
	}
	return t
}

// TestMatMulMatchesNaiveRandomShapes is the property test pinning the
// blocked kernel (and its TN/NT siblings) to the naive reference over
// randomized shapes, including sizes that straddle the blocking factors.
func TestMatMulMatchesNaiveRandomShapes(t *testing.T) {
	rng := NewRNG(42)
	dims := []int{1, 2, 3, 5, 17, 64, 129, 300}
	for trial := 0; trial < 40; trial++ {
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		want := naiveMatMul(a, b)

		if got := MatMul(a, b); MaxAbsDiff(got, want) != 0 {
			t.Fatalf("MatMul (%d,%d)x(%d,%d) differs from naive by %g", m, k, k, n, MaxAbsDiff(got, want))
		}
		// TN: build aT stored (k,m) such that aTᵀ == a.
		aT := Transpose(a)
		if got := MatMulTN(aT, b); MaxAbsDiff(got, want) != 0 {
			t.Fatalf("MatMulTN (%d,%d)ᵀx(%d,%d) differs from naive", k, m, k, n)
		}
		// NT: build bT stored (n,k) such that bTᵀ == b.
		bT := Transpose(b)
		if got := MatMulNT(a, bT); MaxAbsDiff(got, want) != 0 {
			t.Fatalf("MatMulNT (%d,%d)x(%d,%d)ᵀ differs from naive", m, k, n, k)
		}
	}
}

// TestMatMulZeroHeavyInputs pins the behaviour that replaced the old
// data-dependent `if av == 0 { continue }` fast path: results on zero-heavy
// inputs must match the dense reference exactly, with no value-dependent
// branches changing the arithmetic.
func TestMatMulZeroHeavyInputs(t *testing.T) {
	rng := NewRNG(7)
	a := randMat(rng, 37, 53)
	b := randMat(rng, 53, 29)
	// Zero out ~80% of a and half the rows of b.
	for i := range a.data {
		if rng.Uint64()%5 != 0 {
			a.data[i] = 0
		}
	}
	for p := 0; p < 53; p += 2 {
		for j := 0; j < 29; j++ {
			b.data[p*29+j] = 0
		}
	}
	want := naiveMatMul(a, b)
	if got := MatMul(a, b); MaxAbsDiff(got, want) != 0 {
		t.Fatalf("zero-heavy MatMul differs from naive by %g", MaxAbsDiff(got, want))
	}
	// An all-zero operand must produce an exactly zero result.
	z := New(37, 53)
	got := MatMul(z, b)
	for i, v := range got.data {
		if v != 0 {
			t.Fatalf("all-zero MatMul produced %g at %d", v, i)
		}
	}
}

func TestMatMulIntoVariantsWriteDst(t *testing.T) {
	rng := NewRNG(9)
	a := randMat(rng, 8, 12)
	b := randMat(rng, 12, 5)
	want := naiveMatMul(a, b)

	// Stale destination contents must be fully overwritten by every variant.
	dst := Full(999, 8, 5)
	MatMulInto(dst, a, b)
	if MaxAbsDiff(dst, want) != 0 {
		t.Fatal("MatMulInto did not overwrite stale destination contents")
	}
	dst.Fill(999)
	MatMulTNInto(dst, Transpose(a), b) // Transpose(a) is (12,8) stored TN
	if MaxAbsDiff(dst, want) != 0 {
		t.Fatal("MatMulTNInto did not overwrite stale destination contents")
	}
	dst.Fill(999)
	MatMulNTInto(dst, a, Transpose(b)) // Transpose(b) is (5,12) stored NT
	if MaxAbsDiff(dst, want) != 0 {
		t.Fatal("MatMulNTInto did not overwrite stale destination contents")
	}
}

// TestKernelsBitIdenticalAcrossWorkerCounts asserts the headline determinism
// guarantee: every kernel produces byte-for-byte identical results whether
// it runs serially or with many workers.
func TestKernelsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := NewRNG(11)
	a := randMat(rng, 67, 130)
	b := randMat(rng, 130, 41)
	input := RandNormal(rng, 0, 1, 3, 4, 11, 11)
	weight := RandNormal(rng, 0, 0.5, 6, 4, 3, 3)
	bias := RandNormal(rng, 0, 0.5, 6)
	single := RandNormal(rng, 0, 1, 1, 4, 11, 11)

	type result struct {
		mm, conv, convN1, gi, gw, gb *Tensor
		arg                          []int
	}
	run := func(workers int) result {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		out := Conv2D(input, weight, bias, 1, 1)
		gi, gw, gb := Conv2DBackward(input, weight, true, out, 1, 1)
		_, arg := MaxPool2D(input, 2, 2)
		return result{
			mm:     MatMul(a, b),
			conv:   out,
			convN1: Conv2D(single, weight, bias, 1, 1),
			gi:     gi, gw: gw, gb: gb,
			arg: arg,
		}
	}
	ref := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		for name, pair := range map[string][2]*Tensor{
			"MatMul":            {ref.mm, got.mm},
			"Conv2D":            {ref.conv, got.conv},
			"Conv2D batch1":     {ref.convN1, got.convN1},
			"Conv2DBackward gi": {ref.gi, got.gi},
			"Conv2DBackward gw": {ref.gw, got.gw},
			"Conv2DBackward gb": {ref.gb, got.gb},
		} {
			if d := MaxAbsDiff(pair[0], pair[1]); d != 0 {
				t.Errorf("workers=%d: %s differs from serial by %g", w, name, d)
			}
		}
		for i := range ref.arg {
			if ref.arg[i] != got.arg[i] {
				t.Errorf("workers=%d: MaxPool2D argmax differs at %d", w, i)
				break
			}
		}
	}
}

// TestConv2DIntoMatchesConv2D pins the allocation-free entry point to the
// allocating wrapper.
func TestConv2DIntoMatchesConv2D(t *testing.T) {
	rng := NewRNG(13)
	input := RandNormal(rng, 0, 1, 2, 3, 9, 9)
	weight := RandNormal(rng, 0, 0.5, 5, 3, 3, 3)
	want := Conv2D(input, weight, nil, 2, 1)
	dst := want.NewLike()
	dst.Fill(123)
	Conv2DInto(dst, input, weight, nil, 2, 1)
	if MaxAbsDiff(dst, want) != 0 {
		t.Fatal("Conv2DInto differs from Conv2D")
	}
}
