package checkpoint

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustTrace(t *testing.T, s *Schedule) *Trace {
	t.Helper()
	tr, err := s.Trace()
	if err != nil {
		t.Fatalf("schedule %s is invalid: %v", s, err)
	}
	return tr
}

func checkAdjointOrder(t *testing.T, tr *Trace, l int) {
	t.Helper()
	if len(tr.BackpropOrder) != l {
		t.Fatalf("expected %d adjoint steps, got %d", l, len(tr.BackpropOrder))
	}
	for i, step := range tr.BackpropOrder {
		if step != l-i {
			t.Fatalf("adjoint steps out of order: position %d ran step %d", i, step)
		}
	}
}

func TestPlanRevolveMatchesDP(t *testing.T) {
	for _, l := range []int{1, 2, 3, 5, 10, 18, 34, 50, 101, 152} {
		for _, c := range []int{0, 1, 2, 3, 5, 8, 20, 151} {
			sched, err := PlanRevolve(l, c)
			if err != nil {
				t.Fatalf("PlanRevolve(%d,%d): %v", l, c, err)
			}
			tr := mustTrace(t, sched)
			checkAdjointOrder(t, tr, l)
			if tr.Forwards != MinForwards(l, c) {
				t.Fatalf("PlanRevolve(%d,%d) executes %d forwards, DP optimum is %d", l, c, tr.Forwards, MinForwards(l, c))
			}
			if tr.PeakSlots > c {
				t.Fatalf("PlanRevolve(%d,%d) used %d slots, budget %d", l, c, tr.PeakSlots, c)
			}
		}
	}
}

func TestPlanRevolveRepetitionBound(t *testing.T) {
	// The observed maximum per-step execution count of the generated schedule
	// must not exceed the binomial repetition number plus one.
	for _, tc := range []struct{ l, c int }{{50, 3}, {101, 5}, {152, 8}, {152, 2}} {
		sched, err := PlanRevolve(tc.l, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		tr := mustTrace(t, sched)
		if rep := Repetition(tc.l, tc.c); tr.MaxStepExecutions > rep+1 {
			t.Fatalf("schedule (%d,%d) executes a step %d times, repetition number is %d", tc.l, tc.c, tr.MaxStepExecutions, rep)
		}
	}
}

func TestPlanStoreAll(t *testing.T) {
	for _, l := range []int{1, 2, 5, 18, 50} {
		sched, err := PlanStoreAll(l)
		if err != nil {
			t.Fatal(err)
		}
		tr := mustTrace(t, sched)
		checkAdjointOrder(t, tr, l)
		if tr.Forwards != int64(l-1) && l > 0 {
			if !(l == 1 && tr.Forwards == 0) {
				t.Fatalf("store-all for l=%d ran %d forwards, want %d", l, tr.Forwards, l-1)
			}
		}
		if tr.MaxStepExecutions > 1 {
			t.Fatalf("store-all must never recompute, but a step ran %d times", tr.MaxStepExecutions)
		}
		if tr.PeakSlots > l-1 && l > 1 {
			t.Fatalf("store-all peak slots %d exceeds l-1=%d", tr.PeakSlots, l-1)
		}
	}
}

func TestPlanSequentialValidAndCosts(t *testing.T) {
	for _, l := range []int{4, 10, 18, 34, 50} {
		for _, s := range []int{1, 2, 3, 5, 7} {
			sched, err := PlanSequential(l, s)
			if err != nil {
				t.Fatalf("PlanSequential(%d,%d): %v", l, s, err)
			}
			tr := mustTrace(t, sched)
			checkAdjointOrder(t, tr, l)
			segments := s
			if segments > l {
				segments = l
			}
			if want := SequentialForwards(l, segments); tr.Forwards != want {
				t.Fatalf("PlanSequential(%d,%d) ran %d forwards, formula says %d", l, s, tr.Forwards, want)
			}
			// The simulated peak should be within one buffer of the paper's
			// closed-form slot count (the formula counts the working buffer
			// of the final state slightly differently).
			formula := SequentialMemorySlots(l, segments)
			if tr.PeakSlots > formula {
				t.Fatalf("PlanSequential(%d,%d) peak %d exceeds formula %d", l, s, tr.PeakSlots, formula)
			}
			if tr.PeakSlots < formula-2 {
				t.Fatalf("PlanSequential(%d,%d) peak %d is far below formula %d — accounting drifted", l, s, tr.PeakSlots, formula)
			}
		}
	}
}

func TestSequentialNoRecomputeBeyondTwice(t *testing.T) {
	sched, err := PlanSequential(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTrace(t, sched)
	if tr.MaxStepExecutions > 2 {
		t.Fatalf("checkpoint_sequential re-runs each segment at most once, but a step ran %d times", tr.MaxStepExecutions)
	}
}

func TestPlanSequentialRejectsBadSegments(t *testing.T) {
	if _, err := PlanSequential(10, 0); err == nil {
		t.Fatal("zero segments should be rejected")
	}
	if _, err := PlanSequential(-1, 2); err == nil {
		t.Fatal("negative length should be rejected")
	}
}

func TestScheduleRenderAndString(t *testing.T) {
	sched, err := PlanRevolve(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sched.Render(), "backprop") {
		t.Fatal("Render should list backprop actions")
	}
	if !strings.Contains(sched.String(), "revolve") {
		t.Fatalf("String should mention the policy: %s", sched.String())
	}
	a := Action{Kind: ActionRestore, Slot: InputSlot}
	if a.String() != "restore[input]" {
		t.Fatalf("input restore rendered as %q", a.String())
	}
}

func TestTraceRejectsInvalidSchedules(t *testing.T) {
	cases := []struct {
		name  string
		sched Schedule
	}{
		{"advance past end", Schedule{Length: 2, Slots: 1, Actions: []Action{{Kind: ActionAdvance, Steps: 5}}}},
		{"snapshot bad slot", Schedule{Length: 2, Slots: 1, Actions: []Action{{Kind: ActionSnapshot, Slot: 3}}}},
		{"restore empty slot", Schedule{Length: 2, Slots: 1, Actions: []Action{{Kind: ActionRestore, Slot: 0}}}},
		{"free empty slot", Schedule{Length: 2, Slots: 1, Actions: []Action{{Kind: ActionFree, Slot: 0}}}},
		{"backprop wrong state", Schedule{Length: 2, Slots: 1, Actions: []Action{{Kind: ActionBackprop}}}},
		{"incomplete", Schedule{Length: 2, Slots: 1, Actions: []Action{{Kind: ActionAdvance, Steps: 1}, {Kind: ActionBackprop}}}},
		{"double snapshot", Schedule{Length: 3, Slots: 1, Actions: []Action{
			{Kind: ActionAdvance, Steps: 1}, {Kind: ActionSnapshot, Slot: 0}, {Kind: ActionSnapshot, Slot: 0},
		}}},
		{"nonpositive advance", Schedule{Length: 2, Slots: 1, Actions: []Action{{Kind: ActionAdvance, Steps: 0}}}},
	}
	for _, tc := range cases {
		if _, err := tc.sched.Trace(); err == nil {
			t.Errorf("%s: invalid schedule accepted", tc.name)
		}
	}
}

func TestTraceValidMinimalSchedule(t *testing.T) {
	// Hand-written schedule for l=2, one slot: advance to x_1, backprop step 2,
	// restore input, backprop step 1.
	sched := Schedule{Length: 2, Slots: 1, Policy: "manual", Actions: []Action{
		{Kind: ActionAdvance, Steps: 1},
		{Kind: ActionBackprop},
		{Kind: ActionRestore, Slot: InputSlot},
		{Kind: ActionBackprop},
	}}
	tr, err := sched.Trace()
	if err != nil {
		t.Fatalf("manual schedule rejected: %v", err)
	}
	if tr.Forwards != 1 || tr.PeakSlots != 0 {
		t.Fatalf("manual schedule trace wrong: %+v", tr)
	}
}

// Property: for random (l, c) the generated Revolve schedule is valid, optimal
// and within budget.
func TestPlanRevolveProperty(t *testing.T) {
	f := func(lRaw, cRaw uint8) bool {
		l := int(lRaw%80) + 1
		c := int(cRaw % 12)
		sched, err := PlanRevolve(l, c)
		if err != nil {
			return false
		}
		tr, err := sched.Trace()
		if err != nil {
			return false
		}
		if tr.Forwards != MinForwards(l, c) {
			return false
		}
		cap := c
		if cap > l-1 {
			cap = l - 1
		}
		if cap < 0 {
			cap = 0
		}
		return tr.PeakSlots <= cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequential schedules are always valid and their forwards match
// the closed-form count.
func TestPlanSequentialProperty(t *testing.T) {
	f := func(lRaw, sRaw uint8) bool {
		l := int(lRaw%60) + 1
		s := int(sRaw%8) + 1
		sched, err := PlanSequential(l, s)
		if err != nil {
			return false
		}
		tr, err := sched.Trace()
		if err != nil {
			return false
		}
		if s > l {
			s = l
		}
		return tr.Forwards == SequentialForwards(l, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
