package checkpoint

import (
	"fmt"
	"sort"
)

// Additional single-level baselines used by the ablation benchmarks: periodic
// ("checkpoint every k-th state") and logarithmic ("checkpoint states at
// power-of-two distances from the end") placement. Both are common ad-hoc
// schemes in deep-learning codebases; comparing them against Revolve
// quantifies how much the optimal placement matters on an Edge node.

// PlanPeriodic builds a schedule that snapshots every k-th state during the
// forward sweep and, during the backward sweep, recomputes the states inside
// each period from its snapshot (storing them temporarily, like
// checkpoint_sequential does within a segment).
func PlanPeriodic(l, k int) (*Schedule, error) {
	if err := ValidateArgs(l, k); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("checkpoint: periodic interval must be at least 1, got %d", k)
	}
	segments := (l + k - 1) / k
	return PlanSequential(l, segments)
}

// PeriodicMemorySlots returns the retained-activation count of the periodic
// scheme with interval k on a chain of l steps (boundary checkpoints plus the
// final period stored in full), mirroring SequentialMemorySlots.
func PeriodicMemorySlots(l, k int) int {
	if l <= 0 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	segments := (l + k - 1) / k
	return SequentialMemorySlots(l, segments)
}

// LogSpacedStates returns the state indices a logarithmic placement would
// retain for a chain of l steps: the states at distance 1, 2, 4, 8, ... from
// the end, plus the input. This scheme is popular because it needs only
// O(log l) memory, at the price of an O(l) recompute factor in the worst case.
func LogSpacedStates(l int) []int {
	if l <= 0 {
		return nil
	}
	seen := map[int]bool{0: true}
	states := []int{0}
	for d := 1; d < l; d *= 2 {
		s := l - d
		if s > 0 && !seen[s] {
			seen[s] = true
			states = append(states, s)
		}
	}
	return states
}

// LogSpacedMemorySlots returns the number of retained states of the
// logarithmic placement (excluding the always-present input).
func LogSpacedMemorySlots(l int) int {
	states := LogSpacedStates(l)
	if len(states) == 0 {
		return 0
	}
	return len(states) - 1
}

// LogSpacedForwards returns the forward-step executions of the logarithmic
// placement: the initial sweep plus, for every adjoint step, an advance from
// the nearest retained state at or below it. Retained states are not refreshed
// during the backward sweep (the scheme's usual, simple formulation).
func LogSpacedForwards(l int) int64 {
	if l <= 1 {
		return 0
	}
	states := LogSpacedStates(l)
	retained := make(map[int]bool, len(states))
	for _, s := range states {
		retained[s] = true
	}
	total := int64(l - 1) // initial sweep
	for step := l; step >= 1; step-- {
		need := step - 1
		if retained[need] {
			continue
		}
		// Advance from the nearest retained state below `need`.
		from := need
		for !retained[from] {
			from--
		}
		total += int64(need - from)
	}
	return total
}

// BaselineComparison summarises all implemented schemes at one configuration.
type BaselineComparison struct {
	Scheme      string
	Slots       int   // retained activations excluding the input
	Forwards    int64 // forward-step executions
	Rho         float64
	FeasibleFor bool // true when the scheme can be tuned to the given budget at all
}

// CompareBaselines evaluates store-all, Revolve, checkpoint_sequential,
// periodic and logarithmic checkpointing on a chain of l steps, each tuned to
// its minimum-memory configuration whose recompute factor stays at or below
// rho.
func CompareBaselines(l int, rho float64, m CostModel) []BaselineComparison {
	var out []BaselineComparison

	// Store-all.
	storeForwards := int64(l - 1)
	out = append(out, BaselineComparison{
		Scheme: "store-all", Slots: l - 1, Forwards: storeForwards,
		Rho: m.Rho(l, storeForwards), FeasibleFor: m.Rho(l, storeForwards) <= rho,
	})

	// Optimal Revolve.
	res := MinSlotsForRho(l, rho, m)
	out = append(out, BaselineComparison{
		Scheme: "revolve", Slots: res.Slots, Forwards: res.Forwards,
		Rho: m.Rho(l, res.Forwards), FeasibleFor: res.Feasible,
	})

	// checkpoint_sequential.
	seqSlots, seqSegments, seqOK := MinSequentialSlotsForRho(l, rho, m)
	seqForwards := SequentialForwards(l, seqSegments)
	out = append(out, BaselineComparison{
		Scheme: "sequential", Slots: seqSlots, Forwards: seqForwards,
		Rho: m.Rho(l, seqForwards), FeasibleFor: seqOK,
	})

	// Periodic: best interval within the budget.
	bestK, bestSlots := 0, l
	for k := 1; k <= l; k++ {
		segments := (l + k - 1) / k
		fw := SequentialForwards(l, segments)
		if m.Rho(l, fw) > rho+1e-12 {
			continue
		}
		if s := PeriodicMemorySlots(l, k); s < bestSlots {
			bestSlots, bestK = s, k
		}
	}
	if bestK == 0 {
		out = append(out, BaselineComparison{Scheme: "periodic", Slots: l, Forwards: storeForwards, Rho: m.Rho(l, storeForwards)})
	} else {
		segments := (l + bestK - 1) / bestK
		fw := SequentialForwards(l, segments)
		out = append(out, BaselineComparison{
			Scheme: "periodic", Slots: bestSlots, Forwards: fw, Rho: m.Rho(l, fw), FeasibleFor: true,
		})
	}

	// Logarithmic (fixed shape; feasibility depends on the budget).
	logFw := LogSpacedForwards(l)
	out = append(out, BaselineComparison{
		Scheme: "logarithmic", Slots: LogSpacedMemorySlots(l), Forwards: logFw,
		Rho: m.Rho(l, logFw), FeasibleFor: m.Rho(l, logFw) <= rho,
	})
	return out
}

// PlanLogSpaced builds an executable schedule for the logarithmic placement:
// the initial sweep snapshots the states at power-of-two distances from the
// end, and the backward sweep rebuilds every other state by advancing from
// the nearest retained state below it. Its Trace().Forwards equals
// LogSpacedForwards(l) and its peak slot usage equals LogSpacedMemorySlots(l).
func PlanLogSpaced(l int) (*Schedule, error) {
	if err := ValidateArgs(l, 0); err != nil {
		return nil, err
	}
	states := LogSpacedStates(l)
	sort.Ints(states)
	p := newPlanner(l, max(len(states)-1, 0), "logspaced")

	// Forward sweep: snapshot each retained state as it is passed.
	for _, s := range states {
		if s == 0 {
			continue
		}
		p.emit(Action{Kind: ActionAdvance, Steps: s - p.current})
		p.current = s
		p.snapshot(s)
	}

	// Backward sweep: before each adjoint, rebuild its input from the nearest
	// retained state at or below it. Retained states are never refreshed (the
	// scheme's usual, simple formulation).
	for step := l; step >= 1; step-- {
		need := step - 1
		if p.current != need {
			from := need
			for {
				if _, ok := p.slotOf[from]; ok {
					break
				}
				from--
			}
			p.restore(from)
			if from < need {
				p.emit(Action{Kind: ActionAdvance, Steps: need - from})
				p.current = need
			}
		}
		p.emit(Action{Kind: ActionBackprop})
	}
	return p.sched, nil
}
