package checkpoint

import "github.com/edgeml/edgetrain/schedule"

// ChainSpec is the homogeneous-chain ("LinearResNet") memory description used
// by Section VI: a chain of Length equal steps, a fixed weight-related memory
// cost, and one activation buffer of ActivationBytes per stored state.
type ChainSpec struct {
	Name            string
	Length          int   // number of homogeneous steps (the network depth)
	WeightBytes     int64 // memory for weights, gradients and optimiser state
	ActivationBytes int64 // memory of one stored inter-stage state (per batch)
}

// MemoryWithSlots returns the peak training memory when c checkpoint slots
// are used: weights plus the chain input plus c stored states.
func (cs ChainSpec) MemoryWithSlots(c int) int64 {
	if c < 0 {
		c = 0
	}
	return cs.WeightBytes + int64(c+1)*cs.ActivationBytes
}

// MemoryNoCheckpoint returns the peak training memory of plain
// backpropagation, with every one of the Length per-stage activations stored.
// This is the quantity tabulated in Tables I-III and equals
// MemoryWithSlots(Length-1), the footprint the slot search converges to as
// rho approaches 1.
func (cs ChainSpec) MemoryNoCheckpoint() int64 {
	return cs.MemoryWithSlots(cs.Length - 1)
}

// FitsIn reports whether the no-checkpoint footprint fits a device with the
// given memory capacity in bytes.
func (cs ChainSpec) FitsIn(capacity int64) bool {
	return cs.MemoryNoCheckpoint() <= capacity
}

// CurvePoint is one point of a Figure 1 series: the recompute factor, the
// minimal checkpoint slots achieving it, the resulting peak memory, and the
// forward-step count of the corresponding optimal schedule.
type CurvePoint struct {
	Rho         float64
	Slots       int
	Forwards    int64
	MemoryBytes int64
	Feasible    bool
}

// MemoryVsRho computes the Figure 1 series for one chain: for every requested
// recompute factor, the minimal peak memory achievable by optimal (Revolve)
// checkpointing whose time-to-solution stays within rho times the
// no-checkpointing baseline.
//
// For rho values below the minimum achievable overhead the point is marked
// infeasible and reports the store-all footprint, which is how "rho = 1
// corresponds to the case with no checkpointing" appears in the plots.
func MemoryVsRho(cs ChainSpec, rhos []float64, m CostModel) []CurvePoint {
	points := make([]CurvePoint, 0, len(rhos))
	for _, rho := range rhos {
		res := MinSlotsForRho(cs.Length, rho, m)
		mem := cs.MemoryWithSlots(res.Slots)
		if !res.Feasible {
			mem = cs.MemoryNoCheckpoint()
		}
		points = append(points, CurvePoint{
			Rho:         rho,
			Slots:       res.Slots,
			Forwards:    res.Forwards,
			MemoryBytes: mem,
			Feasible:    res.Feasible,
		})
	}
	return points
}

// MinRhoToFit returns the smallest recompute factor (searched on a fine grid
// up to maxRho) at which the chain's peak memory fits the given capacity, or
// ok=false if even the largest allowed recompute factor does not suffice.
func MinRhoToFit(cs ChainSpec, capacity int64, m CostModel, maxRho float64) (rho float64, slots int, ok bool) {
	if cs.MemoryWithSlots(0) > capacity {
		return 0, 0, false // weights plus a single buffer alone exceed memory
	}
	if cs.MemoryNoCheckpoint() <= capacity {
		return 1, cs.Length - 1, true
	}
	// The largest slot count that fits determines the minimal rho.
	maxSlots := int((capacity-cs.WeightBytes)/cs.ActivationBytes) - 1
	if maxSlots < 0 {
		return 0, 0, false
	}
	forwards := MinForwards(cs.Length, maxSlots)
	r := m.Rho(cs.Length, forwards)
	if r < 1 {
		r = 1
	}
	if r > maxRho {
		return r, maxSlots, false
	}
	return r, maxSlots, true
}

// SequentialMemoryVsRho is the uniform-segment (checkpoint_sequential)
// counterpart of MemoryVsRho, used by the ablation benchmarks to compare the
// PyTorch baseline against optimal checkpointing at equal recompute budgets.
func SequentialMemoryVsRho(cs ChainSpec, rhos []float64, m CostModel) []CurvePoint {
	points := make([]CurvePoint, 0, len(rhos))
	for _, rho := range rhos {
		slots, _, ok := MinSequentialSlotsForRho(cs.Length, rho, m)
		var mem int64
		if ok {
			// SequentialMemorySlots already includes the stored final segment;
			// add the input buffer to match MemoryWithSlots conventions.
			mem = cs.WeightBytes + int64(slots+1)*cs.ActivationBytes
		} else {
			mem = cs.MemoryNoCheckpoint()
		}
		points = append(points, CurvePoint{Rho: rho, Slots: slots, MemoryBytes: mem, Feasible: ok})
	}
	return points
}

// PeakBytesForSchedule simulates a schedule against a heterogeneous chain
// whose state i (the output of step i) occupies stateBytes[i] bytes, and
// returns the peak number of bytes held in checkpoint slots plus the chain
// input (stateBytes[0]). It delegates to the shared simulator in the public
// schedule package. stateBytes must have Length+1 entries (states x_0..x_L).
func PeakBytesForSchedule(s *Schedule, stateBytes []int64) (int64, error) {
	return schedule.PeakBytes(s.Stream(), stateBytes)
}
