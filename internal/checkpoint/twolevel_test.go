package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlanTwoLevelCostDegenerate(t *testing.T) {
	cfg := TwoLevelConfig{RAMSlots: 3, WriteCost: 5, ReadCost: 5}
	// Zero disk checkpoints degenerates to plain in-RAM Revolve.
	c, err := PlanTwoLevelCost(50, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.DiskWrites != 0 || c.DiskReads != 0 || c.IOTime != 0 {
		t.Fatalf("zero disk checkpoints should not touch flash: %+v", c)
	}
	if c.Forwards != MinForwards(50, 3) {
		t.Fatalf("degenerate two-level forwards %d, want Revolve optimum %d", c.Forwards, MinForwards(50, 3))
	}
	// Trivial chains cost nothing.
	c, err = PlanTwoLevelCost(1, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Forwards != 0 || c.IOTime != 0 {
		t.Fatalf("trivial chain should be free: %+v", c)
	}
	if _, err := PlanTwoLevelCost(-1, 0, cfg); err == nil {
		t.Fatal("negative length accepted")
	}
	if _, err := PlanTwoLevelCost(10, -1, cfg); err == nil {
		t.Fatal("negative disk count accepted")
	}
}

func TestTwoLevelReducesRecomputation(t *testing.T) {
	// With very few RAM slots, spilling a handful of checkpoints to flash
	// must reduce the forward recomputation (that is the whole point).
	cfg := TwoLevelConfig{RAMSlots: 2, WriteCost: 1, ReadCost: 1}
	noDisk, err := PlanTwoLevelCost(152, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withDisk, err := PlanTwoLevelCost(152, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withDisk.Forwards >= noDisk.Forwards {
		t.Fatalf("flash checkpoints should reduce recomputation: %d vs %d forwards", withDisk.Forwards, noDisk.Forwards)
	}
	if withDisk.DiskWrites != 7 || withDisk.DiskReads != 7 {
		t.Fatalf("expected 7 writes and 7 reads, got %d/%d", withDisk.DiskWrites, withDisk.DiskReads)
	}
	if withDisk.PeakRAMStates > cfg.RAMSlots+1 {
		t.Fatalf("RAM footprint %d exceeds the budget", withDisk.PeakRAMStates)
	}
}

func TestTwoLevelTotalTimeAccountsForIO(t *testing.T) {
	m := DefaultCostModel
	cheapIO := TwoLevelConfig{RAMSlots: 2, WriteCost: 0.1, ReadCost: 0.1}
	dearIO := TwoLevelConfig{RAMSlots: 2, WriteCost: 50, ReadCost: 50}
	cheap, err := PlanTwoLevelCost(100, 9, cheapIO)
	if err != nil {
		t.Fatal(err)
	}
	dear, err := PlanTwoLevelCost(100, 9, dearIO)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Forwards != dear.Forwards {
		t.Fatal("IO cost must not change the forward count")
	}
	if dear.TotalTime(100, m) <= cheap.TotalTime(100, m) {
		t.Fatal("expensive flash must increase total time")
	}
	if dear.Rho(100, m) <= cheap.Rho(100, m) {
		t.Fatal("expensive flash must increase rho")
	}
}

func TestOptimalDiskCheckpointsTradeoff(t *testing.T) {
	m := DefaultCostModel
	// With free flash the optimum uses many checkpoints; with very expensive
	// flash it uses none.
	free := TwoLevelConfig{RAMSlots: 1, WriteCost: 0, ReadCost: 0}
	bestFree, err := OptimalDiskCheckpoints(152, free, m, 40)
	if err != nil {
		t.Fatal(err)
	}
	if bestFree.DiskCheckpoints < 5 {
		t.Fatalf("free flash should be used generously, got %d checkpoints", bestFree.DiskCheckpoints)
	}
	dear := TwoLevelConfig{RAMSlots: 1, WriteCost: 1000, ReadCost: 1000}
	bestDear, err := OptimalDiskCheckpoints(152, dear, m, 40)
	if err != nil {
		t.Fatal(err)
	}
	if bestDear.DiskCheckpoints != 0 {
		t.Fatalf("prohibitive flash cost should disable spilling, got %d checkpoints", bestDear.DiskCheckpoints)
	}
	// The optimum is never worse than either extreme of its search range.
	d0, _ := PlanTwoLevelCost(152, 0, free)
	if bestFree.TotalTime(152, m) > d0.TotalTime(152, m)+1e-9 {
		t.Fatal("optimal disk-checkpoint count is worse than using none")
	}
}

func TestTwoLevelMemory(t *testing.T) {
	cs := ChainSpec{Length: 152, WeightBytes: 900e6, ActivationBytes: 30e6}
	cost, err := PlanTwoLevelCost(152, 7, TwoLevelConfig{RAMSlots: 2, WriteCost: 1, ReadCost: 1})
	if err != nil {
		t.Fatal(err)
	}
	mem := TwoLevelMemory(cs, cost)
	if mem != 900e6+3*30e6 {
		t.Fatalf("two-level RAM footprint %d, want weights + 3 states", mem)
	}
	if mem >= cs.MemoryNoCheckpoint() {
		t.Fatal("two-level footprint should be far below store-all")
	}
	// Degenerate cost still accounts the input buffer.
	if TwoLevelMemory(cs, TwoLevelCost{}) != cs.WeightBytes+cs.ActivationBytes {
		t.Fatal("empty plan should still count the input state")
	}
}

// Property: total time is monotone non-increasing in the RAM budget and the
// forward count never drops below l-1.
func TestTwoLevelMonotoneProperty(t *testing.T) {
	m := DefaultCostModel
	f := func(lRaw, dRaw uint8) bool {
		l := int(lRaw%120) + 2
		d := int(dRaw % 10)
		prev := math.Inf(1)
		for ram := 0; ram <= 6; ram++ {
			c, err := PlanTwoLevelCost(l, d, TwoLevelConfig{RAMSlots: ram, WriteCost: 2, ReadCost: 2})
			if err != nil {
				return false
			}
			if c.Forwards < int64(l-1) {
				return false
			}
			tt := c.TotalTime(l, m)
			if tt > prev+1e-9 {
				return false
			}
			prev = tt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
