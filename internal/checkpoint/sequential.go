package checkpoint

import "math"

// SequentialMemorySlots returns the number of retained activations of
// PyTorch's checkpoint_sequential for a homogeneous chain of l blocks split
// into s segments, as given in Section V of the paper:
//
//	Memory = s - 1 + (l - floor(l/s) * (s - 1))
//
// i.e. one checkpoint per segment boundary plus full storage of the final
// segment. The unit is "activation slots" (one slot = the activation of one
// block).
func SequentialMemorySlots(l, s int) int {
	if l <= 0 {
		return 0
	}
	if s < 1 {
		s = 1
	}
	if s > l {
		s = l
	}
	return s - 1 + (l - (l/s)*(s-1))
}

// SequentialLowerBound returns 2*sqrt(l), the paper's lower bound on the
// number of activation slots achievable by checkpoint_sequential for any
// choice of the segments parameter s >= 2.
func SequentialLowerBound(l int) float64 {
	if l <= 0 {
		return 0
	}
	return 2 * math.Sqrt(float64(l))
}

// BestSequentialSegments returns the segment count s in [1, l] minimising
// SequentialMemorySlots, together with the minimal slot count. Ties are
// broken towards the smaller s (which also minimises recomputation).
func BestSequentialSegments(l int) (segments, slots int) {
	if l <= 0 {
		return 1, 0
	}
	bestS, bestM := 1, SequentialMemorySlots(l, 1)
	for s := 2; s <= l; s++ {
		if m := SequentialMemorySlots(l, s); m < bestM {
			bestS, bestM = s, m
		}
	}
	return bestS, bestM
}

// SequentialForwards returns the total number of forward-step executions of
// checkpoint_sequential with s segments on a chain of l blocks, under the
// package convention that the forward execution folded into each adjoint step
// is not counted: the initial sweep costs l-1 advances and every segment
// except the last is re-advanced once (floor(l/s)-1 steps each).
func SequentialForwards(l, s int) int64 {
	if l <= 0 {
		return 0
	}
	if s < 1 {
		s = 1
	}
	if s > l {
		s = l
	}
	return int64(l-1) + int64(s-1)*int64(l/s-1)
}

// SequentialRho returns the recompute factor of checkpoint_sequential with s
// segments under the given cost model. Note that unlike the Revolve
// schedules, the initial forward sweep here always runs the full chain, so
// rho >= 1 + something even for s = 1.
func SequentialRho(l, s int, m CostModel) float64 {
	return m.Rho(l, SequentialForwards(l, s))
}

// MinSequentialSlotsForRho returns the minimal SequentialMemorySlots value
// achievable by any segment count whose recompute factor stays at or below
// rho, mirroring MinSlotsForRho for the uniform baseline. The boolean is
// false if no segment count satisfies the budget.
func MinSequentialSlotsForRho(l int, rho float64, m CostModel) (slots int, segments int, ok bool) {
	best := -1
	bestS := 0
	for s := 1; s <= l; s++ {
		if SequentialRho(l, s, m) > rho+1e-12 {
			continue
		}
		mem := SequentialMemorySlots(l, s)
		if best == -1 || mem < best {
			best, bestS = mem, s
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestS, true
}
