package checkpoint

import (
	"fmt"

	"github.com/edgeml/edgetrain/schedule"
)

// The action vocabulary is defined once, in the public schedule package; the
// algorithm layer re-exports it so the planners read naturally and existing
// internal call sites keep working.

// ActionKind enumerates the primitive operations a schedule is made of.
type ActionKind = schedule.ActionKind

// The schedule action vocabulary, aliased from the public schedule package.
const (
	ActionAdvance  = schedule.ActionAdvance
	ActionSnapshot = schedule.ActionSnapshot
	ActionRestore  = schedule.ActionRestore
	ActionFree     = schedule.ActionFree
	ActionBackprop = schedule.ActionBackprop
)

// InputSlot is the pseudo-slot identifier for the chain input x_0.
const InputSlot = schedule.InputSlot

// Tier identifies the storage medium of a checkpoint slot; see schedule.Tier.
type Tier = schedule.Tier

// The storage tiers, aliased from the public schedule package.
const (
	TierRAM  = schedule.TierRAM
	TierDisk = schedule.TierDisk
)

// Action is one primitive operation of a schedule.
type Action = schedule.Action

// Trace is the result of simulating a schedule; see schedule.Trace.
type Trace = schedule.Trace

// Schedule is a materialized checkpointing plan for a chain of Length steps
// using at most Slots checkpoint slots. It is the planners' working
// representation; Stream() adapts it to the public schedule.Schedule
// interface consumed by the executor and the tools.
type Schedule struct {
	Length  int
	Slots   int
	Policy  string // human-readable name of the generating policy
	Actions []Action
}

// Stream adapts the materialized plan to the public streaming interface.
func (s *Schedule) Stream() *schedule.Memory {
	return schedule.FromActions(s.Length, s.Slots, s.Policy, s.Actions)
}

// String summarises the schedule.
func (s *Schedule) String() string {
	tr, err := s.Trace()
	if err != nil {
		return fmt.Sprintf("Schedule(%s, L=%d, slots=%d, INVALID: %v)", s.Policy, s.Length, s.Slots, err)
	}
	return fmt.Sprintf("Schedule(%s, L=%d, slots=%d, forwards=%d, peak=%d, actions=%d)",
		s.Policy, s.Length, s.Slots, tr.Forwards, tr.PeakSlots, len(s.Actions))
}

// Render returns a multi-line listing of the schedule's actions, useful for
// inspection from cmd/revolveplan.
func (s *Schedule) Render() string {
	return schedule.Render(s.Stream())
}

// Trace simulates the schedule and verifies that it is a correct reversal of
// the chain: every adjoint step runs exactly once, in order L..1, with its
// input state available, never exceeding the slot budget. The simulation is
// the shared one in the schedule package.
func (s *Schedule) Trace() (*Trace, error) {
	return schedule.Run(s.Stream())
}

// planner carries the mutable state used while emitting a schedule.
type planner struct {
	sched     *Schedule
	current   int   // working state the emitted actions would leave us at
	freeSlots []int // stack of free slot indices
	slotOf    map[int]int
}

func newPlanner(l, slots int, policy string) *planner {
	p := &planner{
		sched:  &Schedule{Length: l, Slots: slots, Policy: policy},
		slotOf: map[int]int{0: InputSlot},
	}
	for s := slots - 1; s >= 0; s-- {
		p.freeSlots = append(p.freeSlots, s)
	}
	return p
}

func (p *planner) emit(a Action) { p.sched.Actions = append(p.sched.Actions, a) }

func (p *planner) restore(state int) {
	slot, ok := p.slotOf[state]
	if !ok {
		panic(fmt.Sprintf("checkpoint: internal planner error: state %d not stored", state))
	}
	p.emit(Action{Kind: ActionRestore, Slot: slot})
	p.current = state
}

// ensure makes the working state equal to target, which must be a stored
// state or reachable by advancing from the current working state.
func (p *planner) ensure(target int) {
	if p.current == target {
		return
	}
	if _, stored := p.slotOf[target]; stored {
		p.restore(target)
		return
	}
	if p.current > target {
		panic(fmt.Sprintf("checkpoint: internal planner error: cannot reach state %d from %d", target, p.current))
	}
	p.emit(Action{Kind: ActionAdvance, Steps: target - p.current})
	p.current = target
}

func (p *planner) snapshot(state int) int { return p.snapshotTier(state, TierRAM) }

// snapshotTier stores the current state in a free slot, annotating the
// emitted action with the storage tier the planner assigns to it.
func (p *planner) snapshotTier(state int, tier Tier) int {
	if len(p.freeSlots) == 0 {
		panic("checkpoint: internal planner error: no free slots")
	}
	if p.current != state {
		panic("checkpoint: internal planner error: snapshot of a non-current state")
	}
	slot := p.freeSlots[len(p.freeSlots)-1]
	p.freeSlots = p.freeSlots[:len(p.freeSlots)-1]
	p.emit(Action{Kind: ActionSnapshot, Slot: slot, Tier: tier})
	p.slotOf[state] = slot
	return slot
}

func (p *planner) free(state int) {
	slot, ok := p.slotOf[state]
	if !ok || slot == InputSlot {
		panic("checkpoint: internal planner error: freeing an unstored state")
	}
	p.emit(Action{Kind: ActionFree, Slot: slot})
	delete(p.slotOf, state)
	p.freeSlots = append(p.freeSlots, slot)
}

func (p *planner) backprop(step int) {
	p.ensure(step - 1)
	p.emit(Action{Kind: ActionBackprop})
}

// reverse emits the actions that perform the adjoints of steps
// base+1..base+length (in decreasing order), assuming state x_base is stored
// (or is the input) and `slots` checkpoint slots are free.
func (p *planner) reverse(base, length, slots int) {
	switch {
	case length == 0:
		return
	case length == 1:
		p.backprop(base + 1)
		return
	case slots == 0:
		// No slots: re-advance from x_base before each adjoint step.
		for step := base + length; step > base; step-- {
			if p.current > step-1 {
				p.ensure(base)
			}
			if p.current < step-1 {
				p.emit(Action{Kind: ActionAdvance, Steps: step - 1 - p.current})
				p.current = step - 1
			}
			p.emit(Action{Kind: ActionBackprop})
		}
		return
	}
	j := OptimalFirstCheckpoint(length, slots)
	if j == 0 {
		// The extra slot does not help; plan as if it were not there.
		p.reverse(base, length, slots-1)
		return
	}
	p.ensure(base)
	p.emit(Action{Kind: ActionAdvance, Steps: j})
	p.current = base + j
	p.snapshot(base + j)
	p.reverse(base+j, length-j, slots-1)
	p.free(base + j)
	p.reverse(base, j, slots)
}

// PlanRevolve builds an optimal (minimum-forwards) checkpointing schedule for
// a chain of l steps with at most c checkpoint slots, following the
// binomial/Revolve dynamic program. The returned schedule's Trace().Forwards
// equals MinForwards(l, c).
func PlanRevolve(l, c int) (*Schedule, error) {
	if err := ValidateArgs(l, c); err != nil {
		return nil, err
	}
	if c > l-1 {
		c = max(l-1, 0)
	}
	p := newPlanner(l, c, "revolve")
	p.reverse(0, l, c)
	return p.sched, nil
}

// PlanStoreAll builds the no-checkpointing baseline: one forward sweep that
// stores every intermediate state, followed by the backward sweep. It uses
// l-1 slots and performs l-1 forward steps.
func PlanStoreAll(l int) (*Schedule, error) {
	if err := ValidateArgs(l, 0); err != nil {
		return nil, err
	}
	slots := max(l-1, 0)
	p := newPlanner(l, slots, "store-all")
	for st := 1; st <= l-1; st++ {
		p.emit(Action{Kind: ActionAdvance, Steps: 1})
		p.current = st
		p.snapshot(st)
	}
	for step := l; step >= 1; step-- {
		p.backprop(step)
		if step <= l-1 {
			// State x_step was only needed for the adjoint of step+1, which
			// has already run; release its slot.
			p.free(step)
		}
	}
	return p.sched, nil
}

// PlanSequential builds the uniform-segment schedule equivalent to PyTorch's
// checkpoint_sequential with the given number of segments: segment inputs are
// checkpointed during the forward sweep, the last segment keeps all its
// activations, and each earlier segment is re-run in full (storing its
// intermediate states) just before it is backpropagated.
func PlanSequential(l, segments int) (*Schedule, error) {
	if err := ValidateArgs(l, segments); err != nil {
		return nil, err
	}
	if segments < 1 {
		return nil, fmt.Errorf("checkpoint: PlanSequential requires at least 1 segment, got %d", segments)
	}
	if segments > l {
		segments = l
	}
	segLen := l / segments
	if segLen == 0 {
		segLen = 1
	}
	// Segment k (0-based) covers steps [starts[k]+1, starts[k+1]].
	var starts []int
	for k := 0; k < segments; k++ {
		starts = append(starts, k*segLen)
	}
	starts = append(starts, l) // sentinel: end of the last segment

	// Slot budget: segment-input checkpoints plus full storage of the longest
	// segment (the last one holds the remainder).
	lastLen := l - starts[segments-1]
	maxSeg := max(segLen, lastLen)
	slots := (segments - 1) + max(maxSeg-1, 0) + 1
	p := newPlanner(l, slots, fmt.Sprintf("sequential(%d)", segments))

	// Forward sweep: checkpoint each segment input (except x_0), then store
	// every intermediate state of the last segment.
	for k := 1; k < segments; k++ {
		p.ensure(starts[k-1])
		p.emit(Action{Kind: ActionAdvance, Steps: starts[k] - starts[k-1]})
		p.current = starts[k]
		p.snapshot(starts[k])
	}
	lastStart := starts[segments-1]
	for st := lastStart + 1; st <= l-1; st++ {
		p.emit(Action{Kind: ActionAdvance, Steps: 1})
		p.current = st
		p.snapshot(st)
	}

	// Backward sweep, segment by segment from the last to the first.
	for k := segments - 1; k >= 0; k-- {
		segStart, segEnd := starts[k], starts[k+1]
		if k != segments-1 {
			// Recompute the segment, storing its intermediate states.
			p.ensure(segStart)
			for st := segStart + 1; st <= segEnd-1; st++ {
				p.emit(Action{Kind: ActionAdvance, Steps: 1})
				p.current = st
				p.snapshot(st)
			}
		}
		for step := segEnd; step > segStart; step-- {
			p.backprop(step)
			if step-1 > segStart {
				p.free(step - 1)
			}
		}
		if segStart != 0 {
			p.free(segStart)
		}
	}
	return p.sched, nil
}
