package checkpoint

import (
	"fmt"
	"math"
)

// Two-level checkpointing: the Waggle node has very little RAM but an SD
// card large enough for "about 100,000 images" (Section III). The natural
// extension of Revolve for such a node — and the subject of the paper's
// reference [1], disk-revolve — is to spill a few checkpoints to flash and
// run the optimal in-memory schedule inside each flash-to-flash segment.
//
// This file provides the cost model and planner for that scheme: the chain is
// cut into d+1 segments by d evenly spaced flash checkpoints written during
// the initial sweep; segments are then reversed from last to first, each with
// the optimal (Revolve) in-RAM schedule using the RAM slot budget.

// TwoLevelConfig describes the storage hierarchy.
type TwoLevelConfig struct {
	// RAMSlots is the number of in-memory checkpoint slots.
	RAMSlots int
	// WriteCost and ReadCost are the costs of writing/reading one state to or
	// from flash, expressed in forward-step units.
	WriteCost float64
	ReadCost  float64
}

// TwoLevelCost is the cost breakdown of a two-level plan.
type TwoLevelCost struct {
	DiskCheckpoints int
	Forwards        int64   // forward-step executions (sweep + in-segment recomputation)
	DiskWrites      int     // states written to flash
	DiskReads       int     // states read back from flash
	IOTime          float64 // write/read cost in forward-step units
	PeakRAMStates   int     // RAM states retained at any time (checkpoints + input of the active segment)
}

// TotalTime returns the time-to-solution of the plan in forward-step units
// under the given cost model (l backward steps at BackwardRatio each, plus
// forwards, plus flash IO).
func (c TwoLevelCost) TotalTime(l int, m CostModel) float64 {
	return m.Time(l, c.Forwards) + c.IOTime
}

// Rho returns the recompute factor of the plan relative to the
// store-everything-in-RAM baseline.
func (c TwoLevelCost) Rho(l int, m CostModel) float64 {
	if l == 0 {
		return 1
	}
	return c.TotalTime(l, m) / m.BaselineTime(l)
}

// PlanTwoLevelCost computes the cost of reversing a chain of l steps with d
// evenly spaced flash checkpoints and the given RAM budget. d may be 0, in
// which case the plan degenerates to plain in-RAM Revolve.
func PlanTwoLevelCost(l, diskCheckpoints int, cfg TwoLevelConfig) (TwoLevelCost, error) {
	if l < 0 || diskCheckpoints < 0 {
		return TwoLevelCost{}, fmt.Errorf("checkpoint: negative arguments to PlanTwoLevelCost(%d, %d)", l, diskCheckpoints)
	}
	if cfg.RAMSlots < 0 {
		return TwoLevelCost{}, fmt.Errorf("checkpoint: negative RAM slot budget %d", cfg.RAMSlots)
	}
	if diskCheckpoints > l-1 {
		diskCheckpoints = max(l-1, 0)
	}
	cost := TwoLevelCost{DiskCheckpoints: diskCheckpoints}
	if l <= 1 {
		return cost, nil
	}

	// Segment boundaries: d flash checkpoints split the chain into d+1
	// segments of near-equal length.
	segments := diskCheckpoints + 1
	base := l / segments
	extra := l % segments
	segLens := make([]int, segments)
	for i := range segLens {
		segLens[i] = base
		if i < extra {
			segLens[i]++
		}
	}

	// Initial sweep: advance through the whole chain except the final step of
	// the final segment, writing each segment boundary to flash.
	cost.Forwards = int64(l - 1)
	cost.DiskWrites = diskCheckpoints

	// Reverse segments from last to first. The last segment's states beyond
	// the boundary are already in RAM reach (the sweep ended inside it), and
	// every earlier segment is reversed after reading its input boundary back
	// from flash. Within a segment the optimal in-RAM schedule is used, whose
	// recomputation cost is MinForwards(segLen, RAMSlots) minus the advances
	// already performed during the sweep (segLen-1 for the last segment, and
	// the in-segment sweep is re-done for earlier segments, which is exactly
	// what MinForwards counts).
	peak := 0
	for i := segments - 1; i >= 0; i-- {
		segLen := segLens[i]
		if segLen == 0 {
			continue
		}
		inner := MinForwards(segLen, cfg.RAMSlots)
		if i == segments-1 {
			// The sweep already advanced through this segment once; the
			// optimal in-RAM reversal of the segment costs `inner` total,
			// of which segLen-1 advances coincide with the sweep.
			cost.Forwards += inner - int64(segLen-1)
		} else {
			cost.DiskReads++
			cost.Forwards += inner
		}
		slots := cfg.RAMSlots
		if slots > segLen-1 {
			slots = segLen - 1
		}
		if slots+1 > peak {
			peak = slots + 1
		}
	}
	cost.PeakRAMStates = peak
	cost.IOTime = float64(cost.DiskWrites)*cfg.WriteCost + float64(cost.DiskReads)*cfg.ReadCost
	return cost, nil
}

// OptimalDiskCheckpoints searches the flash-checkpoint count that minimises
// total time for the given RAM budget, returning the best count and its cost.
// maxDisk bounds the search (the SD card is large, but each checkpoint costs
// IO time; the optimum is small).
func OptimalDiskCheckpoints(l int, cfg TwoLevelConfig, m CostModel, maxDisk int) (TwoLevelCost, error) {
	if maxDisk <= 0 {
		maxDisk = l - 1
	}
	if maxDisk > l-1 {
		maxDisk = l - 1
	}
	best := TwoLevelCost{}
	bestTime := math.Inf(1)
	for d := 0; d <= maxDisk; d++ {
		c, err := PlanTwoLevelCost(l, d, cfg)
		if err != nil {
			return TwoLevelCost{}, err
		}
		if t := c.TotalTime(l, m); t < bestTime {
			best, bestTime = c, t
		}
	}
	return best, nil
}

// TwoLevelMemory returns the peak RAM consumption of a two-level plan for a
// homogeneous chain: the weight state plus the retained in-RAM states. Flash
// checkpoints do not count against RAM.
func TwoLevelMemory(cs ChainSpec, cost TwoLevelCost) int64 {
	states := cost.PeakRAMStates
	if states < 1 {
		states = 1
	}
	return cs.WeightBytes + int64(states)*cs.ActivationBytes
}

// PlanTwoLevel builds an executable two-level schedule: d evenly spaced
// boundary checkpoints are written during the initial sweep (the flash tier),
// and each of the resulting d+1 segments is then reversed, last to first,
// with the optimal (Revolve) schedule under the RAM slot budget. In the
// emitted schedule the boundary snapshots are annotated with TierDisk (slot
// indices are recycled between tiers, so the tier rides on each Snapshot
// action rather than on the slot); a tier-aware store spills exactly those
// states to flash, while storage-agnostic consumers execute the schedule
// entirely in RAM.
func PlanTwoLevel(l, diskCheckpoints, ramSlots int) (*Schedule, error) {
	if err := ValidateArgs(l, ramSlots); err != nil {
		return nil, err
	}
	if diskCheckpoints < 0 {
		return nil, fmt.Errorf("checkpoint: negative flash checkpoint count %d", diskCheckpoints)
	}
	if diskCheckpoints > l-1 {
		diskCheckpoints = max(l-1, 0)
	}
	segments := diskCheckpoints + 1
	base := l / segments
	extra := l % segments
	starts := make([]int, segments+1)
	for k := 1; k <= segments; k++ {
		starts[k] = starts[k-1] + base
		if k-1 < extra {
			starts[k]++
		}
	}

	p := newPlanner(l, diskCheckpoints+ramSlots, fmt.Sprintf("twolevel(%d)", diskCheckpoints))

	// Initial sweep: write each internal segment boundary to its flash slot.
	// The snapshots are annotated TierDisk so a tier-aware store spills them;
	// storage-agnostic consumers execute them as ordinary RAM slots.
	for k := 1; k < segments; k++ {
		p.emit(Action{Kind: ActionAdvance, Steps: starts[k] - p.current})
		p.current = starts[k]
		p.snapshotTier(starts[k], TierDisk)
	}

	// Reverse segments from last to first, each with the optimal in-RAM
	// schedule; release a segment's boundary once it has been reversed.
	for k := segments - 1; k >= 0; k-- {
		segLen := starts[k+1] - starts[k]
		if segLen == 0 {
			continue
		}
		p.reverse(starts[k], segLen, ramSlots)
		if starts[k] != 0 {
			p.free(starts[k])
		}
	}
	return p.sched, nil
}
