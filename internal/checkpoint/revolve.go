// Package checkpoint implements the paper's core contribution: optimal
// (binomial / Revolve-style) checkpointing for the backward pass of a
// sequential chain, the uniform checkpoint_sequential baseline used by
// PyTorch, and the recompute-factor (rho) budgeted search that Section VI of
// "Training on the Edge" uses to trade memory for recomputation.
//
// # Conventions
//
// A chain has L steps F_1..F_L mapping state x_0 to x_L. Reversing the chain
// (backpropagation) processes adjoint steps L, L-1, ..., 1; the adjoint of
// step i requires its input state x_{i-1} to be available in memory.
//
// Checkpoint slots hold intermediate states x_i. The input x_0 is always
// retained and does not count against the slot budget (this matches training,
// where the input batch is present anyway). A schedule may re-run ("advance")
// forward steps from a stored state to rebuild states that were discarded.
//
// The cost of a schedule is measured in forward-step executions performed by
// Advance actions. The forward work that is intrinsic to every adjoint step
// (recomputing a layer's internals during its backward) is identical with and
// without checkpointing and is accounted separately by CostModel.
package checkpoint

import (
	"fmt"
	"sync"
)

// Infinity is the sentinel cost for infeasible configurations.
const Infinity = int64(1) << 60

// dpCache memoises the dynamic-programming table across calls. The table is
// indexed [slots][length] and grows monotonically; it is guarded by a mutex
// so planners can be used from concurrent benchmarks.
var dpCache struct {
	sync.Mutex
	maxL, maxC int
	table      [][]int64 // [slots][length]
	argmin     [][]int   // optimal first-checkpoint position, 0 if none
}

// ensureDP grows the cached DP table to cover chains up to length l with up
// to c slots and returns the table and argmin matrices. Callers must hold no
// reference across subsequent calls (the slices may be reallocated).
func ensureDP(l, c int) ([][]int64, [][]int) {
	dpCache.Lock()
	defer dpCache.Unlock()
	if l <= dpCache.maxL && c <= dpCache.maxC {
		return dpCache.table, dpCache.argmin
	}
	newL := max(l, dpCache.maxL)
	newC := max(c, dpCache.maxC)
	table := make([][]int64, newC+1)
	argmin := make([][]int, newC+1)
	for s := 0; s <= newC; s++ {
		table[s] = make([]int64, newL+1)
		argmin[s] = make([]int, newL+1)
	}
	// Base cases: length 0 and 1 cost nothing; zero slots forces re-advancing
	// from x_0 before every adjoint step.
	for length := 2; length <= newL; length++ {
		table[0][length] = int64(length) * int64(length-1) / 2
	}
	for s := 1; s <= newC; s++ {
		for length := 2; length <= newL; length++ {
			best := table[s-1][length] // option: leave the extra slot unused
			bestJ := argmin[s-1][length]
			for j := 1; j < length; j++ {
				cost := int64(j) + table[s-1][length-j] + table[s][j]
				if cost < best {
					best, bestJ = cost, j
				}
			}
			table[s][length] = best
			argmin[s][length] = bestJ
		}
	}
	dpCache.maxL, dpCache.maxC = newL, newC
	dpCache.table, dpCache.argmin = table, argmin
	return table, argmin
}

// MinForwards returns the minimal total number of forward-step executions
// (Advance work) needed to reverse a chain of l steps using at most c
// checkpoint slots, excluding the always-available input state x_0.
//
// Special cases: a chain of length 0 or 1 needs no advances; with zero slots
// the only strategy is to re-advance from x_0 for every adjoint step, which
// costs l*(l-1)/2. MinForwards is non-increasing in c and reaches its floor
// of l-1 at c = l-1 (every intermediate state stored during one sweep).
func MinForwards(l, c int) int64 {
	switch {
	case l < 0 || c < 0:
		return Infinity
	case l <= 1:
		return 0
	case c == 0:
		return int64(l) * int64(l-1) / 2
	}
	if c > l-1 {
		c = l - 1 // extra slots beyond l-1 cannot help
	}
	table, _ := ensureDP(l, c)
	return table[c][l]
}

// OptimalFirstCheckpoint returns the position j (1 <= j < l) at which an
// optimal schedule for (l, c) places its first checkpoint, or 0 if the
// optimal schedule for this configuration stores nothing (l <= 1, or the
// extra slot is useless).
func OptimalFirstCheckpoint(l, c int) int {
	if l <= 1 || c <= 0 {
		return 0
	}
	if c > l-1 {
		c = l - 1
	}
	_, argmin := ensureDP(l, c)
	return argmin[c][l]
}

// Beta returns C(c+r, c): the classical binomial bound on the longest chain
// reversible with c checkpoint slots while re-executing no forward step more
// than r times (Griewank & Walther, Algorithm 799). It is exposed for
// analysis and cross-checking; results are clamped to Infinity.
func Beta(c, r int) int64 {
	if c < 0 || r < 0 {
		return 0
	}
	k := c
	if r < k {
		k = r
	}
	n := c + r
	res := int64(1)
	for i := 1; i <= k; i++ {
		res = res * int64(n-k+i) / int64(i)
		if res > Infinity {
			return Infinity
		}
	}
	return res
}

// Repetition returns the binomial repetition number: the smallest r such that
// a chain of l steps can be reversed with c slots while executing no forward
// step more than r+1 times in total. It is 0 for chains of length <= 1.
func Repetition(l, c int) int {
	if l <= 1 {
		return 0
	}
	if c <= 0 {
		return l - 1
	}
	r := 1
	for Beta(c, r) < int64(l) {
		r++
	}
	return r
}

// MinSlotsForForwards returns the smallest checkpoint-slot count c such that
// MinForwards(l, c) <= budget. MinForwards is non-increasing in c, so a
// binary search applies. The second return value is MinForwards(l, c) for the
// returned c. If even c = l-1 (store everything) exceeds the budget, ok is
// false and the returned slots is l-1.
func MinSlotsForForwards(l int, budget int64) (slots int, forwards int64, ok bool) {
	if l <= 1 {
		return 0, 0, true
	}
	lo, hi := 0, l-1
	if f := MinForwards(l, hi); f > budget {
		return hi, f, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if MinForwards(l, mid) <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, MinForwards(l, lo), true
}

// ValidateArgs checks chain length and slot count arguments shared by the
// planners, returning a descriptive error for invalid input.
func ValidateArgs(l, c int) error {
	if l < 0 {
		return fmt.Errorf("checkpoint: negative chain length %d", l)
	}
	if c < 0 {
		return fmt.Errorf("checkpoint: negative slot count %d", c)
	}
	return nil
}
