package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSequentialMemorySlotsFormula(t *testing.T) {
	// Direct evaluation of the paper's formula: Memory = s-1 + (l - floor(l/s)(s-1)).
	cases := []struct {
		l, s, want int
	}{
		{10, 1, 10}, // one segment stores everything
		{10, 2, 6},  // 1 + (10 - 5*1)
		{10, 5, 6},  // 4 + (10 - 2*4)
		{12, 3, 6},  // 2 + (12 - 4*2)
		{100, 10, 19},
		{152, 12, 31}, // 11 + (152 - 12*11)
		{7, 3, 5},     // 2 + (7 - 2*2)
	}
	for _, tc := range cases {
		if got := SequentialMemorySlots(tc.l, tc.s); got != tc.want {
			t.Errorf("SequentialMemorySlots(%d, %d) = %d, want %d", tc.l, tc.s, got, tc.want)
		}
	}
}

func TestSequentialMemorySlotsEdgeCases(t *testing.T) {
	if SequentialMemorySlots(0, 3) != 0 {
		t.Fatal("empty chain should need no slots")
	}
	if SequentialMemorySlots(10, 0) != SequentialMemorySlots(10, 1) {
		t.Fatal("segment counts below 1 should clamp to 1")
	}
	if SequentialMemorySlots(5, 50) != SequentialMemorySlots(5, 5) {
		t.Fatal("segment counts above l should clamp to l")
	}
}

func TestSequentialLowerBoundHolds(t *testing.T) {
	// For every l and every s >= 2, the formula must stay at or above 2*sqrt(l)-1
	// (the paper's bound is asymptotic; the discrete formula can dip a hair
	// below the continuous bound, but never by a full slot).
	for l := 2; l <= 400; l++ {
		bound := SequentialLowerBound(l)
		for s := 2; s <= l; s++ {
			if m := float64(SequentialMemorySlots(l, s)); m < bound-1 {
				t.Fatalf("l=%d s=%d: memory %v below lower bound %v", l, s, m, bound)
			}
		}
	}
}

func TestSequentialLowerBoundIsTightSomewhere(t *testing.T) {
	// For perfect squares the optimal segment choice should come close to the
	// 2*sqrt(l) bound (within a couple of slots).
	for _, l := range []int{16, 64, 100, 144} {
		_, best := BestSequentialSegments(l)
		bound := SequentialLowerBound(l)
		if float64(best) > bound+2 {
			t.Fatalf("l=%d: best sequential memory %d is far from the bound %v", l, best, bound)
		}
	}
}

func TestBestSequentialSegments(t *testing.T) {
	s, m := BestSequentialSegments(100)
	if m != SequentialMemorySlots(100, s) {
		t.Fatal("BestSequentialSegments returned inconsistent pair")
	}
	for s2 := 1; s2 <= 100; s2++ {
		if SequentialMemorySlots(100, s2) < m {
			t.Fatalf("segment count %d beats the reported best", s2)
		}
	}
	if s0, m0 := BestSequentialSegments(0); s0 != 1 || m0 != 0 {
		t.Fatal("empty chain mishandled")
	}
}

func TestSequentialForwardsAndRho(t *testing.T) {
	// s=1: just the initial sweep (the adjoint of the final step needs no advance).
	if SequentialForwards(10, 1) != 9 {
		t.Fatalf("SequentialForwards(10,1) = %d, want 9", SequentialForwards(10, 1))
	}
	// s=2 on l=10: one extra re-advance of the first segment (4 steps).
	if SequentialForwards(10, 2) != 13 {
		t.Fatalf("SequentialForwards(10,2) = %d, want 13", SequentialForwards(10, 2))
	}
	m := CostModel{BackwardRatio: 1}
	// l=10, s=2: time = 13 + 10 = 23, baseline 20 -> rho 1.15.
	if got := SequentialRho(10, 2, m); math.Abs(got-1.15) > 1e-12 {
		t.Fatalf("SequentialRho(10,2) = %v, want 1.15", got)
	}
}

func TestMinSequentialSlotsForRho(t *testing.T) {
	m := DefaultCostModel
	// A generous budget should reach the best achievable memory.
	slots, segs, ok := MinSequentialSlotsForRho(100, 3, m)
	if !ok {
		t.Fatal("rho=3 must be feasible for sequential checkpointing")
	}
	_, best := BestSequentialSegments(100)
	if slots != best {
		t.Fatalf("generous budget should reach the best memory %d, got %d (segments=%d)", best, slots, segs)
	}
	// An impossible budget returns not-ok.
	if _, _, ok := MinSequentialSlotsForRho(100, 0.5, m); ok {
		t.Fatal("rho=0.5 cannot be feasible")
	}
	// rho=1 admits only s=1 (no recomputation beyond the sweep).
	slots1, segs1, ok1 := MinSequentialSlotsForRho(100, 1, m)
	if !ok1 || segs1 != 1 || slots1 != 100 {
		t.Fatalf("rho=1 should force a single segment storing everything, got slots=%d segs=%d ok=%v", slots1, segs1, ok1)
	}
}

// Property: the optimal binomial checkpointing never needs more memory than
// checkpoint_sequential at the same recompute budget — the paper's core
// argument for replacing the uniform scheme.
func TestRevolveDominatesSequentialProperty(t *testing.T) {
	m := DefaultCostModel
	f := func(lRaw, rhoRaw uint8) bool {
		l := int(lRaw%120) + 4
		rho := 1.1 + float64(rhoRaw%20)/10.0
		seqSlots, _, seqOK := MinSequentialSlotsForRho(l, rho, m)
		res := MinSlotsForRho(l, rho, m)
		if !res.Feasible {
			return false
		}
		if !seqOK {
			return true // sequential cannot even meet the budget; revolve wins by default
		}
		// Compare total retained activations: revolve stores slots + input.
		return res.Slots+1 <= seqSlots+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the formula value always lies between 2*sqrt(l)-1 and l.
func TestSequentialMemoryRangeProperty(t *testing.T) {
	f := func(lRaw, sRaw uint8) bool {
		l := int(lRaw%200) + 1
		s := int(sRaw%20) + 1
		m := SequentialMemorySlots(l, s)
		return float64(m) >= SequentialLowerBound(l)-1 && m <= l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
