package checkpoint

import (
	"fmt"
	"math"
)

// CostModel converts forward/backward step counts into the recompute factor
// rho used throughout Section VI of the paper. rho is the ratio between the
// time to solution of a checkpointed backpropagation and the time to
// solution of plain backpropagation with all activations stored.
//
// BackwardRatio is the cost of one adjoint (backward) step relative to one
// forward step. Deep-learning practice and the AD literature both put this
// close to 2 (the backward pass of a convolution does roughly twice the work
// of its forward pass), which is the default used by the benchmarks; setting
// it to 1 reproduces the symmetric-cost accounting.
type CostModel struct {
	// BackwardRatio is the relative cost of a backward step (default 2).
	BackwardRatio float64
}

// DefaultCostModel is the cost model used by the Figure 1 reproduction.
var DefaultCostModel = CostModel{BackwardRatio: 2}

// normalized returns the model with defaults applied.
func (m CostModel) normalized() CostModel {
	if m.BackwardRatio <= 0 {
		m.BackwardRatio = 2
	}
	return m
}

// BaselineTime returns the time (in forward-step units) of one
// backpropagation through a chain of l steps with every activation stored:
// l forward steps plus l backward steps.
func (m CostModel) BaselineTime(l int) float64 {
	m = m.normalized()
	return float64(l) * (1 + m.BackwardRatio)
}

// Time returns the time (in forward-step units) of a checkpointed
// backpropagation that executes `forwards` forward steps in total (initial
// sweep plus recomputation) and l backward steps.
func (m CostModel) Time(l int, forwards int64) float64 {
	m = m.normalized()
	return float64(forwards) + m.BackwardRatio*float64(l)
}

// Rho returns the recompute factor of a schedule that executes `forwards`
// forward steps for a chain of l steps: Time / BaselineTime. A store-all
// schedule has rho slightly below 1 (it performs l-1 forwards, because the
// adjoint of the final step needs no advance); callers normally clamp at 1.
func (m CostModel) Rho(l int, forwards int64) float64 {
	if l == 0 {
		return 1
	}
	return m.Time(l, forwards) / m.BaselineTime(l)
}

// ForwardBudget returns the largest number of forward-step executions that
// keeps the recompute factor at or below rho for a chain of l steps:
// forwards <= rho*(1+BackwardRatio)*l - BackwardRatio*l.
func (m CostModel) ForwardBudget(l int, rho float64) int64 {
	m = m.normalized()
	budget := rho*m.BaselineTime(l) - m.BackwardRatio*float64(l)
	if budget < 0 {
		return -1
	}
	return int64(math.Floor(budget + 1e-9))
}

// RhoResult describes the outcome of a recompute-factor-budgeted slot search.
type RhoResult struct {
	Rho      float64 // the requested recompute factor
	Slots    int     // minimal checkpoint slots achieving it
	Forwards int64   // forward executions of the optimal schedule with Slots
	Feasible bool    // false if even storing everything exceeds the budget
}

// MinSlotsForRho returns the minimal number of checkpoint slots such that the
// optimal (Revolve) schedule's recompute factor does not exceed rho. This is
// the "PyRevolve + elementary binary search" procedure of Section VI.
func MinSlotsForRho(l int, rho float64, m CostModel) RhoResult {
	if l <= 1 {
		return RhoResult{Rho: rho, Slots: 0, Forwards: 0, Feasible: true}
	}
	budget := m.ForwardBudget(l, rho)
	if budget < 0 {
		return RhoResult{Rho: rho, Slots: l - 1, Forwards: MinForwards(l, l-1), Feasible: false}
	}
	slots, forwards, ok := MinSlotsForForwards(l, budget)
	return RhoResult{Rho: rho, Slots: slots, Forwards: forwards, Feasible: ok}
}

// String summarises the result.
func (r RhoResult) String() string {
	return fmt.Sprintf("rho<=%.3f: slots=%d forwards=%d feasible=%v", r.Rho, r.Slots, r.Forwards, r.Feasible)
}
