package checkpoint

import (
	"testing"
	"testing/quick"
)

// bruteForwards recomputes the dynamic program with a simple exhaustive
// recursion (no caching tricks) to cross-check MinForwards.
func bruteForwards(l, c int, memo map[[2]int]int64) int64 {
	if l <= 1 {
		return 0
	}
	if c == 0 {
		return int64(l) * int64(l-1) / 2
	}
	key := [2]int{l, c}
	if v, ok := memo[key]; ok {
		return v
	}
	best := bruteForwards(l, c-1, memo)
	for j := 1; j < l; j++ {
		cost := int64(j) + bruteForwards(l-j, c-1, memo) + bruteForwards(j, c, memo)
		if cost < best {
			best = cost
		}
	}
	memo[key] = best
	return best
}

func TestMinForwardsSmallKnownValues(t *testing.T) {
	cases := []struct {
		l, c int
		want int64
	}{
		{0, 0, 0},
		{1, 0, 0},
		{1, 5, 0},
		{2, 0, 1},
		{2, 1, 1},
		{3, 0, 3},
		{3, 1, 2},
		{3, 2, 2},
		{4, 1, 4},
		{5, 1, 6},
		{10, 0, 45},
		{10, 9, 9},
		{10, 100, 9}, // extra slots beyond l-1 cannot help
	}
	for _, tc := range cases {
		if got := MinForwards(tc.l, tc.c); got != tc.want {
			t.Errorf("MinForwards(%d, %d) = %d, want %d", tc.l, tc.c, got, tc.want)
		}
	}
}

func TestMinForwardsMatchesBruteForce(t *testing.T) {
	memo := map[[2]int]int64{}
	for l := 0; l <= 40; l++ {
		for c := 0; c <= 8; c++ {
			want := bruteForwards(l, c, memo)
			if got := MinForwards(l, c); got != want {
				t.Fatalf("MinForwards(%d, %d) = %d, brute force says %d", l, c, got, want)
			}
		}
	}
}

func TestMinForwardsMonotoneInSlots(t *testing.T) {
	for _, l := range []int{5, 18, 34, 50, 101, 152} {
		prev := MinForwards(l, 0)
		for c := 1; c <= l; c++ {
			cur := MinForwards(l, c)
			if cur > prev {
				t.Fatalf("MinForwards(%d, %d)=%d > MinForwards(%d, %d)=%d: not monotone", l, c, cur, l, c-1, prev)
			}
			prev = cur
		}
		if prev != int64(l-1) {
			t.Fatalf("MinForwards(%d, %d) = %d, want floor %d", l, l, prev, l-1)
		}
	}
}

func TestMinForwardsNegativeArgs(t *testing.T) {
	if MinForwards(-1, 3) != Infinity || MinForwards(3, -1) != Infinity {
		t.Fatal("negative arguments should return Infinity")
	}
}

func TestBetaKnownValues(t *testing.T) {
	cases := []struct {
		c, r int
		want int64
	}{
		{0, 0, 1},
		{1, 1, 2},
		{2, 2, 6},
		{3, 2, 10},
		{3, 3, 20},
		{8, 3, 165},
		{5, 0, 1},
		{0, 7, 1},
		{-1, 2, 0},
	}
	for _, tc := range cases {
		if got := Beta(tc.c, tc.r); got != tc.want {
			t.Errorf("Beta(%d, %d) = %d, want %d", tc.c, tc.r, got, tc.want)
		}
	}
}

func TestRepetition(t *testing.T) {
	if Repetition(1, 3) != 0 {
		t.Fatal("length-1 chains need no repetition")
	}
	if Repetition(10, 0) != 9 {
		t.Fatalf("Repetition(10, 0) = %d, want 9", Repetition(10, 0))
	}
	// 152-step chain with 8 slots: C(11,8)=165 >= 152, C(10,8)=45 < 152 -> r=3.
	if got := Repetition(152, 8); got != 3 {
		t.Fatalf("Repetition(152, 8) = %d, want 3", got)
	}
	// Enough slots to store everything gives r=1.
	if got := Repetition(152, 151); got != 1 {
		t.Fatalf("Repetition(152, 151) = %d, want 1", got)
	}
}

func TestMinSlotsForForwards(t *testing.T) {
	l := 50
	// Budget equal to the store-all cost needs l-1 slots... or fewer if a
	// smaller slot count achieves the same forwards; verify consistency.
	slots, fw, ok := MinSlotsForForwards(l, int64(l-1))
	if !ok {
		t.Fatal("store-all budget must be feasible")
	}
	if fw > int64(l-1) {
		t.Fatalf("returned forwards %d exceeds budget %d", fw, l-1)
	}
	if slots > 0 && MinForwards(l, slots-1) <= int64(l-1) {
		t.Fatalf("slots=%d is not minimal", slots)
	}

	// An absurdly small budget is infeasible only if below the floor l-1.
	_, _, ok = MinSlotsForForwards(l, int64(l-2))
	if ok {
		t.Fatal("budget below the l-1 floor must be infeasible")
	}

	// Generous budget: a handful of slots should be enough for 3x overhead.
	slots3, fw3, ok3 := MinSlotsForForwards(152, 3*152)
	if !ok3 {
		t.Fatal("3x forward budget must be feasible for l=152")
	}
	if slots3 > 12 {
		t.Fatalf("3x budget should need only a few slots, got %d", slots3)
	}
	if fw3 > 3*152 {
		t.Fatalf("returned forwards %d exceed the budget", fw3)
	}

	// Trivial chains.
	if s, f, ok := MinSlotsForForwards(1, 0); s != 0 || f != 0 || !ok {
		t.Fatal("length-1 chain should need nothing")
	}
}

func TestMinSlotsForForwardsMinimalProperty(t *testing.T) {
	f := func(lRaw, budgetRaw uint8) bool {
		l := int(lRaw%60) + 2
		budget := int64(budgetRaw%200) + int64(l-1)
		slots, fw, ok := MinSlotsForForwards(l, budget)
		if !ok {
			return false // budget >= l-1 is always feasible
		}
		if fw != MinForwards(l, slots) || fw > budget {
			return false
		}
		if slots > 0 && MinForwards(l, slots-1) <= budget {
			return false // not minimal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalFirstCheckpointConsistent(t *testing.T) {
	for _, l := range []int{5, 18, 34, 50, 101, 152} {
		for _, c := range []int{1, 2, 3, 5, 10} {
			j := OptimalFirstCheckpoint(l, c)
			if j == 0 {
				continue
			}
			if j < 1 || j >= l {
				t.Fatalf("OptimalFirstCheckpoint(%d,%d) = %d out of range", l, c, j)
			}
			cost := int64(j) + MinForwards(l-j, c-1) + MinForwards(j, c)
			if cost != MinForwards(l, c) {
				t.Fatalf("argmin j=%d for (%d,%d) gives cost %d, DP says %d", j, l, c, cost, MinForwards(l, c))
			}
		}
	}
}

func TestValidateArgs(t *testing.T) {
	if err := ValidateArgs(10, 3); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}
	if err := ValidateArgs(-1, 3); err == nil {
		t.Fatal("negative length accepted")
	}
	if err := ValidateArgs(10, -3); err == nil {
		t.Fatal("negative slots accepted")
	}
}

// Property: the binomial bound is respected — a chain of length Beta(c, r)
// never needs more than r*Beta(c,r) forwards with c slots, and MinForwards is
// always at least l-1.
func TestMinForwardsBinomialBoundsProperty(t *testing.T) {
	f := func(cRaw, rRaw uint8) bool {
		c := int(cRaw%6) + 1
		r := int(rRaw%4) + 1
		l := Beta(c, r)
		if l > 200 {
			return true // keep the DP small in property tests
		}
		fw := MinForwards(int(l), c)
		if fw < int64(l)-1 {
			return false
		}
		// With repetition number r no step runs more than r times as an
		// advance plus once... conservatively: total advances < r*l.
		return fw <= int64(r)*l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
