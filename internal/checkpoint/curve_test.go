package checkpoint

import (
	"testing"
	"testing/quick"
)

// testChain is a LinearResNet-152-like chain at batch 8, image 500: roughly
// 0.9 GB of weight state and 134 MB per stored activation.
func testChain() ChainSpec {
	return ChainSpec{
		Name:            "linear-resnet152-b8-500",
		Length:          152,
		WeightBytes:     913 << 20,
		ActivationBytes: 134 << 20,
	}
}

func TestChainSpecMemory(t *testing.T) {
	cs := ChainSpec{Length: 10, WeightBytes: 1000, ActivationBytes: 10}
	if cs.MemoryWithSlots(0) != 1010 {
		t.Fatalf("MemoryWithSlots(0) = %d, want 1010", cs.MemoryWithSlots(0))
	}
	if cs.MemoryWithSlots(-3) != cs.MemoryWithSlots(0) {
		t.Fatal("negative slots should clamp to zero")
	}
	if cs.MemoryNoCheckpoint() != 1000+10*10 {
		t.Fatalf("MemoryNoCheckpoint = %d, want 1100", cs.MemoryNoCheckpoint())
	}
	if !cs.FitsIn(1100) || cs.FitsIn(1099) {
		t.Fatal("FitsIn threshold wrong")
	}
}

func TestMemoryVsRhoMonotone(t *testing.T) {
	cs := testChain()
	rhos := []float64{1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0}
	pts := MemoryVsRho(cs, rhos, DefaultCostModel)
	if len(pts) != len(rhos) {
		t.Fatalf("expected %d points, got %d", len(rhos), len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MemoryBytes > pts[i-1].MemoryBytes {
			t.Fatalf("memory must not increase with rho: %d at rho=%v after %d at rho=%v",
				pts[i].MemoryBytes, pts[i].Rho, pts[i-1].MemoryBytes, pts[i-1].Rho)
		}
	}
	// At rho=1 the footprint is essentially the no-checkpoint tables entry
	// (the budget of l forwards allows shaving at most a couple of slots).
	if pts[0].MemoryBytes > cs.MemoryNoCheckpoint() {
		t.Fatalf("rho=1 memory %d exceeds the store-all footprint %d", pts[0].MemoryBytes, cs.MemoryNoCheckpoint())
	}
	if float64(pts[0].MemoryBytes) < 0.95*float64(cs.MemoryNoCheckpoint()) {
		t.Fatalf("rho=1 memory %d is far below the store-all footprint %d", pts[0].MemoryBytes, cs.MemoryNoCheckpoint())
	}
	// By rho=3 the footprint should have collapsed by an order of magnitude.
	last := pts[len(pts)-1]
	if last.MemoryBytes*5 > cs.MemoryNoCheckpoint() {
		t.Fatalf("rho=3 memory %d did not drop enough vs %d", last.MemoryBytes, cs.MemoryNoCheckpoint())
	}
}

func TestMemoryVsRhoReproducesSectionVIClaim(t *testing.T) {
	// Section VI: without checkpointing, at batch 8 / image 500 not even
	// ResNet-18 fits in 2 GB, but a recompute factor between roughly 1.5 and
	// 2.5 brings every model under the limit.
	twoGB := int64(2) << 30
	cs := testChain()
	if cs.MemoryNoCheckpoint() <= twoGB {
		t.Fatal("test chain should not fit without checkpointing")
	}
	rho, slots, ok := MinRhoToFit(cs, twoGB, DefaultCostModel, 4)
	if !ok {
		t.Fatal("the chain should fit within a recompute factor of 4")
	}
	if rho < 1.2 || rho > 3.0 {
		t.Fatalf("expected the fitting recompute factor in [1.2, 3.0], got %v (slots=%d)", rho, slots)
	}
}

func TestMinRhoToFitAlreadyFits(t *testing.T) {
	cs := ChainSpec{Length: 18, WeightBytes: 100 << 20, ActivationBytes: 1 << 20}
	rho, _, ok := MinRhoToFit(cs, 2<<30, DefaultCostModel, 4)
	if !ok || rho != 1 {
		t.Fatalf("small chain should fit at rho=1, got rho=%v ok=%v", rho, ok)
	}
}

func TestMinRhoToFitImpossible(t *testing.T) {
	cs := ChainSpec{Length: 18, WeightBytes: 3 << 30, ActivationBytes: 1 << 20}
	if _, _, ok := MinRhoToFit(cs, 2<<30, DefaultCostModel, 10); ok {
		t.Fatal("weights larger than the device cannot fit at any rho")
	}
}

func TestSequentialMemoryVsRhoDominatedByRevolve(t *testing.T) {
	cs := testChain()
	rhos := []float64{1.3, 1.6, 2.0, 2.5}
	rev := MemoryVsRho(cs, rhos, DefaultCostModel)
	seq := SequentialMemoryVsRho(cs, rhos, DefaultCostModel)
	for i := range rhos {
		if !seq[i].Feasible {
			continue
		}
		if rev[i].MemoryBytes > seq[i].MemoryBytes {
			t.Fatalf("rho=%v: revolve memory %d exceeds sequential %d", rhos[i], rev[i].MemoryBytes, seq[i].MemoryBytes)
		}
	}
}

func TestPeakBytesForSchedule(t *testing.T) {
	sched, err := PlanRevolve(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([]int64, 11)
	for i := range uniform {
		uniform[i] = 100
	}
	peak, err := PeakBytesForSchedule(sched, uniform)
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTrace(t, sched)
	// Uniform sizes: peak bytes = (peak slots + input) * 100.
	if peak != int64(tr.PeakSlots+1)*100 {
		t.Fatalf("uniform peak %d, want %d", peak, int64(tr.PeakSlots+1)*100)
	}

	// Heterogeneous: early activations are large (high-resolution feature
	// maps), later ones small; the peak must be at least the input size and
	// at most the sum of all states.
	hetero := make([]int64, 11)
	var total int64
	for i := range hetero {
		hetero[i] = int64(1000 - 90*i)
		total += hetero[i]
	}
	peakH, err := PeakBytesForSchedule(sched, hetero)
	if err != nil {
		t.Fatal(err)
	}
	if peakH < hetero[0] || peakH > total {
		t.Fatalf("heterogeneous peak %d outside [%d, %d]", peakH, hetero[0], total)
	}

	if _, err := PeakBytesForSchedule(sched, uniform[:5]); err == nil {
		t.Fatal("wrong state-size count should be rejected")
	}
}

// Property: every curve is non-increasing in memory and the slot counts
// respect the forward budget implied by rho.
func TestMemoryVsRhoProperty(t *testing.T) {
	f := func(lRaw uint8, wRaw, aRaw uint16) bool {
		l := int(lRaw%150) + 2
		cs := ChainSpec{
			Length:          l,
			WeightBytes:     int64(wRaw)*1000 + 1,
			ActivationBytes: int64(aRaw)*100 + 1,
		}
		rhos := []float64{1, 1.5, 2, 2.5, 3}
		pts := MemoryVsRho(cs, rhos, DefaultCostModel)
		prev := pts[0].MemoryBytes
		for _, p := range pts[1:] {
			if p.MemoryBytes > prev {
				return false
			}
			prev = p.MemoryBytes
		}
		return pts[0].MemoryBytes <= cs.MemoryNoCheckpoint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
