package checkpoint

import (
	"testing"
	"testing/quick"
)

func TestPlanPeriodicValid(t *testing.T) {
	for _, l := range []int{5, 18, 50} {
		for _, k := range []int{1, 2, 5, 10} {
			sched, err := PlanPeriodic(l, k)
			if err != nil {
				t.Fatalf("PlanPeriodic(%d,%d): %v", l, k, err)
			}
			tr, err := sched.Trace()
			if err != nil {
				t.Fatalf("PlanPeriodic(%d,%d) invalid: %v", l, k, err)
			}
			if len(tr.BackpropOrder) != l {
				t.Fatalf("PlanPeriodic(%d,%d) did not reverse the whole chain", l, k)
			}
		}
	}
	if _, err := PlanPeriodic(10, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestPeriodicMemorySlots(t *testing.T) {
	// Interval 1 retains everything; interval l degenerates to one segment.
	if PeriodicMemorySlots(10, 1) != SequentialMemorySlots(10, 10) {
		t.Fatal("interval 1 should match sequential with l segments")
	}
	if PeriodicMemorySlots(10, 10) != SequentialMemorySlots(10, 1) {
		t.Fatal("interval l should match a single segment")
	}
	if PeriodicMemorySlots(0, 3) != 0 {
		t.Fatal("empty chain should need no slots")
	}
}

func TestLogSpacedStates(t *testing.T) {
	states := LogSpacedStates(16)
	// Expect the input plus states at distances 1, 2, 4, 8 from the end.
	want := map[int]bool{0: true, 15: true, 14: true, 12: true, 8: true}
	if len(states) != len(want) {
		t.Fatalf("LogSpacedStates(16) = %v", states)
	}
	for _, s := range states {
		if !want[s] {
			t.Fatalf("unexpected retained state %d in %v", s, states)
		}
	}
	if LogSpacedStates(0) != nil {
		t.Fatal("empty chain should retain nothing")
	}
	if LogSpacedMemorySlots(16) != 4 {
		t.Fatalf("LogSpacedMemorySlots(16) = %d, want 4", LogSpacedMemorySlots(16))
	}
}

func TestLogSpacedForwards(t *testing.T) {
	// For l=4 the retained states are {0, 3, 2}. Adjoints need states
	// 3 (kept), 2 (kept), 1 (advance 1 from 0), 0 (kept): sweep 3 + 1 = 4.
	if got := LogSpacedForwards(4); got != 4 {
		t.Fatalf("LogSpacedForwards(4) = %d, want 4", got)
	}
	if LogSpacedForwards(1) != 0 {
		t.Fatal("trivial chain should cost nothing")
	}
	// The scheme always costs at least the sweep and at most the zero-slot walk.
	for _, l := range []int{10, 50, 152} {
		fw := LogSpacedForwards(l)
		if fw < int64(l-1) || fw > int64(l)*int64(l-1)/2 {
			t.Fatalf("LogSpacedForwards(%d) = %d out of range", l, fw)
		}
	}
}

func TestCompareBaselinesOrdering(t *testing.T) {
	m := DefaultCostModel
	cmp := CompareBaselines(152, 2.0, m)
	byScheme := map[string]BaselineComparison{}
	for _, c := range cmp {
		byScheme[c.Scheme] = c
	}
	if len(byScheme) != 5 {
		t.Fatalf("expected 5 schemes, got %d", len(byScheme))
	}
	rev := byScheme["revolve"]
	seq := byScheme["sequential"]
	per := byScheme["periodic"]
	all := byScheme["store-all"]
	if !rev.FeasibleFor || !seq.FeasibleFor || !per.FeasibleFor || !all.FeasibleFor {
		t.Fatalf("all tunable schemes should meet rho=2 for l=152: %+v", cmp)
	}
	// The paper's point: optimal checkpointing retains the fewest activations
	// at the same recompute budget.
	if rev.Slots > seq.Slots || rev.Slots > per.Slots || rev.Slots > all.Slots {
		t.Fatalf("revolve should need the fewest slots: %+v", cmp)
	}
	// And every scheme respects its reported budget.
	for _, c := range cmp {
		if c.FeasibleFor && c.Rho > 2.0+1e-9 {
			t.Fatalf("%s reports rho %.3f above the budget", c.Scheme, c.Rho)
		}
	}
}

// Property: periodic schedules are valid and their simulated retained-state
// peak stays within one slot of the closed-form count.
func TestPeriodicFormulaMatchesScheduleProperty(t *testing.T) {
	f := func(lRaw, kRaw uint8) bool {
		l := int(lRaw%50) + 2
		k := int(kRaw%10) + 1
		sched, err := PlanPeriodic(l, k)
		if err != nil {
			return false
		}
		tr, err := sched.Trace()
		if err != nil {
			return false
		}
		formula := PeriodicMemorySlots(l, k)
		return tr.PeakSlots <= formula && tr.PeakSlots >= formula-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
