package checkpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCostModelBaselineAndRho(t *testing.T) {
	m := CostModel{BackwardRatio: 2}
	if m.BaselineTime(100) != 300 {
		t.Fatalf("BaselineTime(100) = %v, want 300", m.BaselineTime(100))
	}
	// Store-all: l-1 forwards -> rho just below 1.
	rho := m.Rho(100, 99)
	if rho >= 1 || rho < 0.99 {
		t.Fatalf("store-all rho = %v, want just below 1", rho)
	}
	// Doubling the forwards over the baseline: (200 + 200) / 300 = 4/3.
	if got := m.Rho(100, 200); math.Abs(got-4.0/3.0) > 1e-12 {
		t.Fatalf("Rho(100, 200) = %v, want 4/3", got)
	}
	if m.Rho(0, 0) != 1 {
		t.Fatal("Rho of an empty chain should be 1")
	}
}

func TestCostModelDefaults(t *testing.T) {
	var m CostModel // zero value -> BackwardRatio defaults to 2
	if m.BaselineTime(10) != 30 {
		t.Fatalf("zero-value cost model should default BackwardRatio to 2, baseline=%v", m.BaselineTime(10))
	}
	if DefaultCostModel.BackwardRatio != 2 {
		t.Fatal("DefaultCostModel should use BackwardRatio 2")
	}
}

func TestForwardBudget(t *testing.T) {
	m := CostModel{BackwardRatio: 2}
	// rho=1: budget = 3l - 2l = l.
	if got := m.ForwardBudget(152, 1); got != 152 {
		t.Fatalf("ForwardBudget(152, 1) = %d, want 152", got)
	}
	// rho=2: budget = 6l - 2l = 4l.
	if got := m.ForwardBudget(100, 2); got != 400 {
		t.Fatalf("ForwardBudget(100, 2) = %d, want 400", got)
	}
	// rho below the backward share is infeasible.
	if got := m.ForwardBudget(100, 0.5); got != -1 {
		t.Fatalf("ForwardBudget(100, 0.5) = %d, want -1", got)
	}
}

func TestMinSlotsForRhoAtOne(t *testing.T) {
	// rho = 1 admits exactly the store-all schedule (budget l >= l-1 forwards),
	// so the slot count should be close to l-1 and memory equals the tables.
	res := MinSlotsForRho(50, 1, DefaultCostModel)
	if !res.Feasible {
		t.Fatal("rho=1 must be feasible")
	}
	if res.Slots < 40 {
		t.Fatalf("rho=1 should need nearly all slots, got %d", res.Slots)
	}
	if res.Forwards > 50 {
		t.Fatalf("rho=1 forwards %d exceed budget", res.Forwards)
	}
}

func TestMinSlotsForRhoDecreasesWithRho(t *testing.T) {
	l := 152
	prev := l
	for _, rho := range []float64{1.0, 1.2, 1.5, 1.8, 2.0, 2.5, 3.0} {
		res := MinSlotsForRho(l, rho, DefaultCostModel)
		if !res.Feasible {
			t.Fatalf("rho=%v should be feasible for l=%d", rho, l)
		}
		if res.Slots > prev {
			t.Fatalf("slot count must not increase with rho: %d at rho=%v after %d", res.Slots, rho, prev)
		}
		prev = res.Slots
	}
	// At rho=3 a 152-layer chain needs only a handful of checkpoints.
	res := MinSlotsForRho(l, 3, DefaultCostModel)
	if res.Slots > 10 {
		t.Fatalf("rho=3 should need at most ~10 slots for l=152, got %d", res.Slots)
	}
}

func TestMinSlotsForRhoInfeasible(t *testing.T) {
	res := MinSlotsForRho(100, 0.3, DefaultCostModel)
	if res.Feasible {
		t.Fatal("rho far below 1 cannot be feasible")
	}
	if res.Slots != 99 {
		t.Fatalf("infeasible result should report the store-all slot count, got %d", res.Slots)
	}
}

func TestMinSlotsForRhoTrivialChain(t *testing.T) {
	res := MinSlotsForRho(1, 1, DefaultCostModel)
	if !res.Feasible || res.Slots != 0 || res.Forwards != 0 {
		t.Fatalf("trivial chain mishandled: %+v", res)
	}
}

func TestRhoResultString(t *testing.T) {
	s := MinSlotsForRho(34, 2, DefaultCostModel).String()
	if len(s) == 0 {
		t.Fatal("empty String")
	}
}

// Property: the slot count returned by MinSlotsForRho always satisfies the
// budget, and one slot fewer always violates it (minimality), for feasible rho.
func TestMinSlotsForRhoMinimalProperty(t *testing.T) {
	m := DefaultCostModel
	f := func(lRaw uint8, rhoRaw uint8) bool {
		l := int(lRaw%100) + 2
		rho := 1.0 + float64(rhoRaw%30)/10.0
		res := MinSlotsForRho(l, rho, m)
		if !res.Feasible {
			return false // rho >= 1 is always feasible
		}
		budget := m.ForwardBudget(l, rho)
		if res.Forwards > budget {
			return false
		}
		if res.Slots > 0 && MinForwards(l, res.Slots-1) <= budget {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
