package parallel

import (
	"sync/atomic"
	"testing"
)

func TestChunks(t *testing.T) {
	cases := []struct{ n, grain, want int }{
		{0, 4, 0},
		{-3, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{8, 4, 2},
		{9, 4, 3},
		{7, 0, 7}, // grain clamps to 1
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.grain); got != c.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", c.n, c.grain, got, c.want)
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		prev := SetWorkers(workers)
		const n = 1003
		var hits [n]atomic.Int32
		For(n, 16, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d, %d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
		SetWorkers(prev)
	}
}

func TestForChunksBoundariesIndependentOfWorkers(t *testing.T) {
	collect := func(workers int) map[int][2]int {
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		out := make(map[int][2]int)
		ch := make(chan [3]int, 64)
		ForChunks(101, 8, func(chunk, lo, hi int) { ch <- [3]int{chunk, lo, hi} })
		close(ch)
		for c := range ch {
			out[c[0]] = [2]int{c[1], c[2]}
		}
		return out
	}
	serial := collect(1)
	parallelised := collect(6)
	if len(serial) != len(parallelised) {
		t.Fatalf("chunk count differs: %d vs %d", len(serial), len(parallelised))
	}
	for c, b := range serial {
		if parallelised[c] != b {
			t.Errorf("chunk %d boundaries differ: %v vs %v", c, b, parallelised[c])
		}
	}
}

func TestOrderedReductionIsBitIdentical(t *testing.T) {
	// The canonical deterministic-reduction pattern: per-chunk partials
	// folded in chunk order must match at every worker count.
	const n = 4096
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	sum := func(workers int) float64 {
		prev := SetWorkers(workers)
		defer SetWorkers(prev)
		parts := make([]float64, Chunks(n, 64))
		ForChunks(n, 64, func(chunk, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			parts[chunk] = s
		})
		total := 0.0
		for _, p := range parts {
			total += p
		}
		return total
	}
	ref := sum(1)
	for _, w := range []int{2, 3, 8} {
		if got := sum(w); got != ref {
			t.Errorf("workers=%d: sum %v differs from serial %v", w, got, ref)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(5)
	if Workers() != 5 {
		t.Fatalf("SetWorkers(5) not applied, got %d", Workers())
	}
	SetWorkers(0) // restore default
	if Workers() < 1 {
		t.Fatalf("default worker count must be >= 1, got %d", Workers())
	}
	SetWorkers(prev)
}
