// Package parallel provides the deterministic fork-join range partitioner
// that underlies the compute kernels in internal/tensor and internal/nn.
//
// The central design constraint is bit-identical results at any worker
// count: chunk boundaries are a pure function of the range length and the
// grain, never of the number of workers. Workers only pick up pre-cut
// chunks, so any reduction that (a) computes per-chunk partials and
// (b) folds them in chunk order produces exactly the same floating-point
// rounding as a serial run. Kernels that write disjoint output ranges are
// deterministic for free.
//
// The worker count defaults to GOMAXPROCS and can be pinned with the
// EDGETRAIN_WORKERS environment variable (read once at start-up) or
// programmatically with SetWorkers. A worker count of 1, or a range small
// enough to fit one chunk, runs inline with no goroutines at all, so small
// tensors never pay dispatch overhead.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

var workerCount atomic.Int64

func init() { workerCount.Store(int64(defaultWorkers())) }

func defaultWorkers() int {
	if s := os.Getenv("EDGETRAIN_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the current worker count used by For and ForChunks.
func Workers() int { return int(workerCount.Load()) }

// SetWorkers overrides the worker count and returns the previous value.
// Passing n <= 0 restores the default (EDGETRAIN_WORKERS or GOMAXPROCS).
// It is primarily a testing and tuning knob; results are identical at any
// setting, only wall-clock changes.
func SetWorkers(n int) int {
	prev := Workers()
	if n <= 0 {
		n = defaultWorkers()
	}
	workerCount.Store(int64(n))
	return prev
}

// Chunks returns the number of fixed-size chunks that ForChunks will cut
// [0, n) into for the given grain. It depends only on n and grain, so
// callers can pre-size per-chunk partial-result buffers.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// ForChunks partitions [0, n) into ceil(n/grain) contiguous chunks of
// exactly grain indices (the last chunk may be shorter) and invokes
// fn(chunk, lo, hi) once per chunk, possibly concurrently. The chunk index
// is stable across worker counts, which is what makes ordered reductions
// over per-chunk partials bit-reproducible.
//
// fn must be safe to call concurrently from multiple goroutines; chunks are
// disjoint, so writes to per-chunk or per-index state need no locking.
func ForChunks(n, grain int, fn func(chunk, lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	nc := Chunks(n, grain)
	if nc == 0 {
		return
	}
	w := Workers()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for c := 0; c < nc; c++ {
			lo := c * grain
			hi := min(lo+grain, n)
			fn(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo := c * grain
				hi := min(lo+grain, n)
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// For partitions [0, n) like ForChunks and invokes fn(lo, hi) for each
// chunk. Use it for kernels whose chunks write disjoint output ranges; use
// ForChunks when a reduction needs the stable chunk index.
func For(n, grain int, fn func(lo, hi int)) {
	ForChunks(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}
