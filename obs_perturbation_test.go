package edgetrain

// TestObservabilityNoPerturbation pins the observability layer's core
// contract: instrumentation records what training did but never changes
// what training does. The same seeded run with metrics and tracing fully
// enabled must produce global weights byte-identical to a run with
// observability disabled — for the in-process fleet and for the
// distributed coordinator alike.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/edgeml/edgetrain/coord"
	"github.com/edgeml/edgetrain/fleet"
	"github.com/edgeml/edgetrain/internal/chain"
	"github.com/edgeml/edgetrain/internal/fleetdemo"
	"github.com/edgeml/edgetrain/internal/tensor"
	"github.com/edgeml/edgetrain/internal/trainer"
	"github.com/edgeml/edgetrain/obs"
)

const (
	obsWorkers = 3
	obsRounds  = 2
	obsSamples = 18
	obsSeed    = uint64(7)
)

// withObservability installs a fresh default registry and tracer, runs fn,
// and restores the disabled defaults. It returns the registry for
// assertions on what was collected.
func withObservability(t *testing.T, fn func()) *obs.Registry {
	t.Helper()
	r := obs.NewRegistry()
	obs.SetDefault(r)
	obs.SetDefaultTracer(obs.NewTracer(0))
	defer obs.SetDefault(nil)
	defer obs.SetDefaultTracer(nil)
	fn()
	return r
}

// flattenParams clones every parameter tensor of the chain.
func flattenParams(c *chain.Chain) []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, p := range c.Params() {
		ps = append(ps, p.Value.Clone())
	}
	return ps
}

func assertParamsBitEqual(t *testing.T, a, b []*tensor.Tensor, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d params vs %d", what, len(a), len(b))
	}
	for i := range a {
		ad, bd := a[i].Data(), b[i].Data()
		if len(ad) != len(bd) {
			t.Fatalf("%s: param %d size %d vs %d", what, i, len(ad), len(bd))
		}
		for j := range ad {
			if math.Float64bits(ad[j]) != math.Float64bits(bd[j]) {
				t.Fatalf("%s: param %d element %d: %v != %v (obs perturbation)",
					what, i, j, ad[j], bd[j])
			}
		}
	}
}

// counterValue reads one counter's value out of a snapshot (0 if absent).
func counterValue(r *obs.Registry, name string) float64 {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

func runObsFleet(t *testing.T) []*tensor.Tensor {
	t.Helper()
	specs := make([]fleet.WorkerSpec, obsWorkers)
	f, err := fleet.New(fleet.Config{
		Workers: specs,
		Rounds:  obsRounds,
		Seed:    obsSeed,
	}, fleetdemo.Model(obsSeed), fleetdemo.Dataset(obsWorkers, obsSamples, obsSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	return flattenParams(f.Global())
}

func runObsCoord(t *testing.T) []*tensor.Tensor {
	t.Helper()
	c, err := coord.New(coord.Config{
		Workers:    obsWorkers,
		Rounds:     obsRounds,
		Samples:    obsSamples,
		Seed:       obsSeed,
		Aggregator: "fedavg",
		Optimizer:  "sgd",
		LR:         0.05,
	}, fleetdemo.Model(obsSeed))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr := coord.NewLoopback()
	addr, err := c.Start(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, obsWorkers)
	for i := 0; i < obsWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = coord.RunWorker(tr, addr, coord.WorkerOptions{
				Spec: fleet.WorkerSpec{Name: fmt.Sprintf("w%d", i)},
				Model: func(a coord.Assignment) (*chain.Chain, error) {
					return fleetdemo.Model(a.Seed)()
				},
				Dataset: func(a coord.Assignment) (trainer.Dataset, error) {
					return fleetdemo.Dataset(a.Workers, a.Samples, a.Seed), nil
				},
			})
		}(i)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	return flattenParams(c.Global())
}

func TestObservabilityNoPerturbation(t *testing.T) {
	if obs.Default() != nil || obs.DefaultTracer() != nil {
		t.Fatal("observability enabled at test entry")
	}

	// In-process fleet: disabled vs enabled.
	plain := runObsFleet(t)
	var instrumented []*tensor.Tensor
	reg := withObservability(t, func() { instrumented = runObsFleet(t) })
	assertParamsBitEqual(t, plain, instrumented, "fleet.Run")
	// Guard against a vacuous pass: the enabled run must have collected.
	if got := counterValue(reg, "chain_steps_total"); got == 0 {
		t.Fatal("instrumented fleet run recorded no chain steps")
	}
	if got := counterValue(reg, "fleet_rounds_total"); got != obsRounds {
		t.Fatalf("fleet_rounds_total = %g, want %d", got, obsRounds)
	}

	// Distributed coordinator over the loopback transport.
	plainCoord := runObsCoord(t)
	assertParamsBitEqual(t, plain, plainCoord, "coord vs fleet baseline")
	var instrumentedCoord []*tensor.Tensor
	reg = withObservability(t, func() { instrumentedCoord = runObsCoord(t) })
	assertParamsBitEqual(t, plainCoord, instrumentedCoord, "coord loopback")
	if got := counterValue(reg, "coord_rounds_committed_total"); got != obsRounds {
		t.Fatalf("coord_rounds_committed_total = %g, want %d", got, obsRounds)
	}
	if got := counterValue(reg, "coord_workers_joined_total"); got != obsWorkers {
		t.Fatalf("coord_workers_joined_total = %g, want %d", got, obsWorkers)
	}
	// The instrumented run exercised the full telemetry shipping path —
	// workers collected delta shipments and the coordinator ingested them —
	// and the weights above still came out bit-identical. Guard against a
	// vacuous pass here too.
	if got := counterValue(reg, "coord_telemetry_frames_total"); got == 0 {
		t.Fatal("instrumented coord run shipped no telemetry frames")
	}
}
